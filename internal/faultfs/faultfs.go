// Package faultfs is the filesystem seam under the solver's durable
// state (runctl checkpoints, obs journals): a small FS interface
// covering exactly the operations those layers perform, a real-OS
// implementation used in production, and a deterministic fault injector
// for crash-consistency testing.
//
// The interface is deliberately narrow — create/append/read/rename/
// remove/stat/truncate plus per-file write/sync/close — so every
// durable-state code path can be enumerated and fault-swept. Injected
// faults (fail the Nth write, torn write, dropped fsync, ENOSPC, rename
// and partial-read failures, post-fault crash) are keyed to
// deterministic operation counts, so a property test can sweep a fault
// over every failpoint of a run and assert the recovery invariants at
// each one.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// Op classifies the filesystem operations the durable-state layers
// perform, for fault matching and operation tracing.
type Op int

const (
	// OpCreate truncates-or-creates a file for writing.
	OpCreate Op = iota
	// OpCreateTemp creates a unique temporary file (atomic-save staging).
	OpCreateTemp
	// OpOpenAppend opens a file for appending, creating it if missing
	// (journal resume).
	OpOpenAppend
	// OpRead reads a whole file (checkpoint/journal load).
	OpRead
	// OpWrite is one File.Write call.
	OpWrite
	// OpSync is one File.Sync (fsync) call.
	OpSync
	// OpClose is one File.Close call.
	OpClose
	// OpRename renames a file (atomic publish, generation rotation,
	// quarantine).
	OpRename
	// OpRemove deletes a file (temp-file cleanup).
	OpRemove
	// OpStat stats a file (generation probing).
	OpStat
	// OpTruncate truncates a file in place (journal salvage).
	OpTruncate

	numOps
)

var opNames = [numOps]string{
	OpCreate:     "create",
	OpCreateTemp: "createtemp",
	OpOpenAppend: "openappend",
	OpRead:       "read",
	OpWrite:      "write",
	OpSync:       "sync",
	OpClose:      "close",
	OpRename:     "rename",
	OpRemove:     "remove",
	OpStat:       "stat",
	OpTruncate:   "truncate",
}

// String returns the operation's stable name (used in fault-sweep test
// labels).
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return "op?"
	}
	return opNames[o]
}

// File is the writable-file surface behind checkpoints and journals.
type File interface {
	io.Writer
	// Name returns the file's path as opened.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Close closes the file.
	Close() error
}

// FS is the filesystem surface behind the solver's durable state. All
// paths are interpreted by the implementation (the OS implementation
// uses them verbatim).
type FS interface {
	// Create truncates-or-creates the named file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a new unique file in dir with a name built from
	// pattern (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens the named file for appending, creating it if it
	// does not exist.
	OpenAppend(name string) (File, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
	// Truncate cuts the named file to the given size.
	Truncate(name string, size int64) error
}

// OS is the real operating-system filesystem; the zero value is ready to
// use and is what production code runs on.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Or returns fsys, or the real OS filesystem when fsys is nil, so
// callers can thread an optional FS without branching.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}
