package sweep

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bbc/internal/obs"
	"bbc/internal/runctl"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is the fixed grid the golden and resume tests run: all
// three workloads, both distributions, both aggregations, one n, a
// feasible and an infeasible k — 24 tuples, all sub-second.
func goldenConfig() Config {
	return Config{
		Workloads: Workloads, Dists: Dists, Aggs: Aggs,
		Ns: []int{4}, Ks: []int{1, 4}, Trials: 1,
	}
}

// freshRegistry installs an empty global registry for the test so tuple
// counter deltas and histogram state cannot leak across tests.
func freshRegistry(t *testing.T) {
	t.Helper()
	prev := obs.SetGlobal(obs.NewRegistry())
	t.Cleanup(func() { obs.SetGlobal(prev) })
}

// render writes results the way cmd/bbcsweep does — CSV and JSONL, in
// deterministic mode — so library tests pin the exact bytes users see.
func render(t *testing.T, results []*Result) (csv, jsonl []byte) {
	t.Helper()
	var cb, jb bytes.Buffer
	cw := obs.NewCSVWriter(&cb, Columns...)
	jw := obs.NewJSONLWriter(&jb)
	for _, r := range results {
		cw.Record(r.CSVRecord(true)...)
		jw.Record(r.Masked(true))
	}
	if err := cw.Err(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

func runAll(t *testing.T, cfg Config, rc RunConfig) []*Result {
	t.Helper()
	var out []*Result
	rc.OnResult = func(r *Result, _ bool) { out = append(out, r) }
	sum, err := Run(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Status != runctl.StatusComplete {
		t.Fatalf("status = %v, want complete", sum.Status)
	}
	return out
}

func TestGridExpansionOrder(t *testing.T) {
	cfg := Config{
		Workloads: []string{"enumerate", "dynamics"},
		Dists:     []string{"uniform"},
		Aggs:      []string{"sum", "max"},
		Ns:        []int{4, 5}, Ks: []int{1}, Trials: 2,
	}
	tuples := cfg.Tuples()
	if len(tuples) != 2*1*2*2*1*2 {
		t.Fatalf("grid size = %d, want 16", len(tuples))
	}
	for i, tp := range tuples {
		if tp.Index != i {
			t.Fatalf("tuple %d has Index %d", i, tp.Index)
		}
	}
	// Odometer order: trial fastest, then k, n, agg, dist, workload.
	if tuples[0].Trial != 0 || tuples[1].Trial != 1 {
		t.Fatalf("trial is not the fastest axis: %+v %+v", tuples[0], tuples[1])
	}
	if tuples[0].N != 4 || tuples[2].N != 5 {
		t.Fatalf("n does not advance after trials: %+v %+v", tuples[0], tuples[2])
	}
	last := tuples[len(tuples)-1]
	if last.Workload != "dynamics" || last.Agg != "max" || last.N != 5 {
		t.Fatalf("last tuple %+v is not the odometer maximum", last)
	}
}

func TestValidateRejectsBadAxes(t *testing.T) {
	base := goldenConfig()
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty n", func(c *Config) { c.Ns = nil }},
		{"zero trials", func(c *Config) { c.Trials = 0 }},
		{"unknown workload", func(c *Config) { c.Workloads = []string{"enumarate"} }},
		{"unknown dist", func(c *Config) { c.Dists = []string{"gaussian"} }},
		{"unknown agg", func(c *Config) { c.Aggs = []string{"avg"} }},
		{"n too small", func(c *Config) { c.Ns = []int{1} }},
		{"k too small", func(c *Config) { c.Ks = []int{0} }},
	} {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Run(cfg, RunConfig{}); err == nil {
			t.Errorf("%s: Run accepted an invalid grid", tc.name)
		}
	}
}

func TestTupleSeedsAreNamespaced(t *testing.T) {
	cfg := goldenConfig()
	freshRegistry(t)
	results := runAll(t, cfg, RunConfig{})
	seen := map[int64]int{}
	for _, r := range results {
		if prev, dup := seen[r.Seed]; dup {
			t.Fatalf("tuples %d and %d share seed %d", prev, r.Index, r.Seed)
		}
		seen[r.Seed] = r.Index
	}
	// A different base seed shifts every stream.
	cfg.Seed = 1
	for _, r := range runAll(t, cfg, RunConfig{}) {
		if _, dup := seen[r.Seed]; dup {
			t.Fatalf("tuple %d reuses a seed from the seed-0 sweep", r.Index)
		}
	}
}

func TestInfeasibleTupleIsRecordedNotFailed(t *testing.T) {
	freshRegistry(t)
	cfg := goldenConfig()
	results := runAll(t, cfg, RunConfig{})
	infeasible := 0
	for _, r := range results {
		if r.K == 4 {
			if r.Verdict != "infeasible" || !r.Pass {
				t.Fatalf("tuple %d (k=4, n=4): verdict %q pass %v, want infeasible/true", r.Index, r.Verdict, r.Pass)
			}
			infeasible++
		} else if r.Verdict == "infeasible" {
			t.Fatalf("tuple %d (k=%d, n=%d) wrongly infeasible", r.Index, r.K, r.N)
		}
	}
	if infeasible != len(results)/2 {
		t.Fatalf("infeasible rows = %d, want %d", infeasible, len(results)/2)
	}
}

// TestGoldenCSVJSONL pins the emitted bytes of the fixed grid — column
// order, quoting, float formatting, JSON field set — against committed
// fixtures. Regenerate with: go test ./internal/sweep/ -run Golden -update
func TestGoldenCSVJSONL(t *testing.T) {
	freshRegistry(t)
	results := runAll(t, goldenConfig(), RunConfig{})
	csv, jsonl := render(t, results)

	csvPath := filepath.Join("testdata", "grid_n4.golden.csv")
	jsonlPath := filepath.Join("testdata", "grid_n4.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonlPath, jsonl, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("CSV differs from golden (regenerate with -update if intended)\ngot:\n%s", csv)
	}
	wantJSONL, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Errorf("JSONL differs from golden (regenerate with -update if intended)\ngot:\n%s", jsonl)
	}
}

// TestResumeByteIdentity is the library-level crash/resume contract: a
// sweep cancelled mid-grid, checkpointed through a real runctl.Store,
// decoded and resumed must emit exactly the bytes of an uninterrupted
// run.
func TestResumeByteIdentity(t *testing.T) {
	cfg := goldenConfig()
	fp := cfg.Fingerprint()

	freshRegistry(t)
	full := runAll(t, cfg, RunConfig{})
	wantCSV, wantJSONL := render(t, full)

	// Interrupted run: cancel after the 5th fresh tuple's save. The
	// in-flight 6th tuple's partial result must be dropped.
	freshRegistry(t)
	store := &runctl.Store{Path: filepath.Join(t.TempDir(), "sweep.ckpt")}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saves := 0
	sum, err := Run(cfg, RunConfig{
		Ctx: ctx,
		Save: func(done map[int]*Result) {
			env, err := runctl.NewCheckpoint(CheckpointKind, fp, runctl.StatusCancelled, nil, &Checkpoint{Results: done})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Save(env); err != nil {
				t.Fatal(err)
			}
			if saves++; saves == 5 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Status != runctl.StatusCancelled {
		t.Fatalf("interrupted status = %v, want cancelled", sum.Status)
	}

	env, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := env.Decode(CheckpointKind, fp, &cp); err != nil {
		t.Fatal(err)
	}
	if got := len(cp.Results); got != 5 {
		t.Fatalf("checkpoint holds %d results, want 5 (partial 6th must be dropped)", got)
	}

	freshRegistry(t)
	var resumedRows []*Result
	resumedCount := 0
	sum, err = Run(cfg, RunConfig{
		Done: cp.Results,
		OnResult: func(r *Result, resumed bool) {
			resumedRows = append(resumedRows, r)
			if resumed {
				resumedCount++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Status != runctl.StatusComplete || sum.Resumed != 5 || resumedCount != 5 {
		t.Fatalf("resume summary %+v (callback saw %d resumed), want complete with 5 resumed", sum, resumedCount)
	}
	gotCSV, gotJSONL := render(t, resumedRows)
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("resumed CSV differs from uninterrupted run\ngot:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("resumed JSONL differs from uninterrupted run")
	}
}

// TestFingerprintSeparatesGrids: a checkpoint from one grid must not
// decode into a differently-shaped sweep.
func TestFingerprintSeparatesGrids(t *testing.T) {
	a := goldenConfig()
	b := goldenConfig()
	b.Ks = []int{1, 3}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different grids share a fingerprint")
	}
	c := goldenConfig()
	c.Seed = 7
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different base seeds share a fingerprint")
	}
	env, err := runctl.NewCheckpoint(CheckpointKind, a.Fingerprint(), runctl.StatusCancelled, nil, &Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := env.Decode(CheckpointKind, b.Fingerprint(), &cp); err == nil {
		t.Fatal("checkpoint from grid A decoded under grid B's fingerprint")
	}
}

// TestMaskedStripsVolatileFields: deterministic rendering zeroes wall
// time, quantiles and *_nanos counters but keeps the work counters, and
// never mutates the original (checkpoints keep real timings).
func TestMaskedStripsVolatileFields(t *testing.T) {
	r := &Result{
		Tuple: Tuple{Index: 3, Workload: "enumerate", Dist: "uniform", Agg: "sum", N: 4, K: 1},
		Seed:  42, Verdict: "complete", Pass: true,
		WallMS: 12.5, EvalP50: 100, EvalP90: 200, EvalP99: 300,
		Counters: map[string]int64{
			"core.profiles_checked": 256,
			"oracle.build_nanos":    999999,
		},
	}
	m := r.Masked(true)
	if m.WallMS != 0 || m.EvalP50 != 0 || m.EvalP90 != 0 || m.EvalP99 != 0 {
		t.Fatalf("volatile fields survived masking: %+v", m)
	}
	if _, ok := m.Counters["oracle.build_nanos"]; ok {
		t.Fatal("nanos counter survived masking")
	}
	if m.Counters["core.profiles_checked"] != 256 {
		t.Fatal("work counter lost in masking")
	}
	if r.WallMS != 12.5 || r.Counters["oracle.build_nanos"] != 999999 {
		t.Fatal("Masked mutated the original result")
	}
	row := r.CSVRecord(true)
	if len(row) != len(Columns) {
		t.Fatalf("CSVRecord has %d fields, Columns has %d", len(row), len(Columns))
	}
	if row[16] != "0" {
		t.Fatalf("wall_ms column = %q, want 0", row[16])
	}
	if got := strings.Join(r.CSVRecord(false), ","); !strings.Contains(got, "12.5") {
		t.Fatalf("timed render lost wall time: %s", got)
	}
}
