// Package sweep expands parameter grids over the BBC engines and runs
// each (workload, distribution, aggregation, n, k, trial) tuple through
// the enumeration scanner, the best-response walker, or the exact
// PoA/PoS pipeline, producing one machine-readable record per tuple.
// cmd/bbcsweep is the CLI front end; the package is the library so tests
// can drive grids, interruption and resume without a process boundary.
//
// Determinism contract: tuples run serially in index order, every
// tuple's RNG is derived from its axes alone (exper.SeedFor over the
// tuple fingerprint), and all solver counters except the *_nanos timing
// counters are deterministic — so two runs of the same grid emit
// byte-identical rows once the volatile wall-time fields are masked
// (Result.CSVRecord / Result.Masked with deterministic=true). Resume
// leans on this: replayed tuples come back from the checkpoint verbatim
// and fresh ones recompute to the same bytes.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"bbc/internal/core"
	"bbc/internal/dynamics"
	"bbc/internal/exper"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// CheckpointKind names the sweep snapshot schema inside the
// runctl.Checkpoint envelope.
const CheckpointKind = "sweep-grid"

// Axis vocabularies. Grids are validated against these before any tuple
// runs, so a typo fails the whole sweep up front instead of half-way in.
var (
	// Workloads are the engines a tuple can exercise: "enumerate" scans
	// the full profile space for pure equilibria, "dynamics" runs one
	// seeded round-robin best-response walk, "experiment" computes exact
	// PoA/PoS via the optimum+enumeration pipeline.
	Workloads = []string{"enumerate", "dynamics", "experiment"}
	// Dists are the link-length distributions: "uniform" is the paper's
	// uniform game (all weights, costs, lengths 1), "nonuniform" draws
	// integer lengths 1..3 per arc from the tuple RNG.
	Dists = []string{"uniform", "nonuniform"}
	// Aggs are the cost aggregations of Section 2: SUM and MAX.
	Aggs = []string{"sum", "max"}
)

// Config is a sweep grid: the cross product of the axis slices, with
// Trials replicas of each axis point (the trial index seeds the tuple
// RNG, so trials differ in start profile and nonuniform instance).
type Config struct {
	Workloads []string `json:"workloads"`
	Dists     []string `json:"dists"`
	Aggs      []string `json:"aggs"`
	Ns        []int    `json:"ns"`
	Ks        []int    `json:"ks"`
	Trials    int      `json:"trials"`

	// MaxProfiles bounds every enumeration/optimum scan (0 = 1<<20).
	MaxProfiles uint64 `json:"max_profiles,omitempty"`
	// MaxSteps bounds every best-response walk (0 = the dynamics
	// default, 10·n²).
	MaxSteps int `json:"max_steps,omitempty"`
	// Seed offsets every tuple's derived RNG stream, so two sweeps over
	// the same grid can sample disjoint randomness.
	Seed int64 `json:"seed,omitempty"`
}

// Validate checks every axis value against its vocabulary and the grid
// for non-emptiness.
func (c Config) Validate() error {
	if len(c.Workloads) == 0 || len(c.Dists) == 0 || len(c.Aggs) == 0 ||
		len(c.Ns) == 0 || len(c.Ks) == 0 {
		return errors.New("sweep: every axis (workload, dist, agg, n, k) needs at least one value")
	}
	if c.Trials < 1 {
		return fmt.Errorf("sweep: trials must be >= 1, got %d", c.Trials)
	}
	for _, w := range c.Workloads {
		if !contains(Workloads, w) {
			return fmt.Errorf("sweep: unknown workload %q (want one of %s)", w, strings.Join(Workloads, ", "))
		}
	}
	for _, d := range c.Dists {
		if !contains(Dists, d) {
			return fmt.Errorf("sweep: unknown dist %q (want one of %s)", d, strings.Join(Dists, ", "))
		}
	}
	for _, a := range c.Aggs {
		if !contains(Aggs, a) {
			return fmt.Errorf("sweep: unknown agg %q (want one of %s)", a, strings.Join(Aggs, ", "))
		}
	}
	for _, n := range c.Ns {
		if n < 2 {
			return fmt.Errorf("sweep: n must be >= 2, got %d", n)
		}
	}
	for _, k := range c.Ks {
		if k < 1 {
			return fmt.Errorf("sweep: k must be >= 1, got %d", k)
		}
	}
	return nil
}

func contains(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

// Fingerprint ties checkpoints to the exact grid and budgets that
// produced them: resuming a half-done sweep under a different grid is
// refused instead of splicing rows from two different experiments.
func (c Config) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "w=%s;d=%s;a=%s;n=%s;k=%s;t=%d;mp=%d;ms=%d;seed=%d",
		strings.Join(c.Workloads, ","), strings.Join(c.Dists, ","),
		strings.Join(c.Aggs, ","), joinInts(c.Ns), joinInts(c.Ks),
		c.Trials, c.MaxProfiles, c.MaxSteps, c.Seed)
	return fmt.Sprintf("sweep-%016x", uint64(exper.SeedFor(b.String(), 0)))
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// Tuple is one grid point: the axes plus its position in odometer order.
type Tuple struct {
	Index    int    `json:"index"`
	Workload string `json:"workload"`
	Dist     string `json:"dist"`
	Agg      string `json:"agg"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	Trial    int    `json:"trial"`
}

// id renders the axes compactly for diagnostics and seed derivation.
func (t Tuple) id() string {
	return fmt.Sprintf("%s/%s/%s/n%d/k%d", t.Workload, t.Dist, t.Agg, t.N, t.K)
}

// Tuples expands the grid in odometer order — workload, dist, agg, n, k,
// trial, trial fastest — which is also the order rows are emitted and
// checkpoints advance.
func (c Config) Tuples() []Tuple {
	var out []Tuple
	for _, w := range c.Workloads {
		for _, d := range c.Dists {
			for _, a := range c.Aggs {
				for _, n := range c.Ns {
					for _, k := range c.Ks {
						for tr := 0; tr < c.Trials; tr++ {
							out = append(out, Tuple{
								Index: len(out), Workload: w, Dist: d,
								Agg: a, N: n, K: k, Trial: tr,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Result is the machine-readable outcome of one tuple — the JSONL
// record, and (via CSVRecord) the CSV row. Fields that do not apply to a
// workload hold their zero values, so the schema is identical across
// workloads.
type Result struct {
	Tuple
	// Seed is the derived RNG seed the tuple ran under.
	Seed int64 `json:"seed"`
	// Verdict classifies the outcome: complete/budget (enumerate),
	// converged/looped/exhausted (dynamics), complete/no-ne/budget
	// (experiment), or infeasible when k has no legal strategy (k > n-1);
	// error when the engine rejected the instance.
	Verdict string `json:"verdict"`
	// Pass is false only for engine errors; budget truncation and no-NE
	// games are legitimate recorded outcomes.
	Pass bool `json:"pass"`
	// Equilibria and Checked report the enumeration scan (and the
	// experiment workload's equilibrium count).
	Equilibria int    `json:"equilibria"`
	Checked    uint64 `json:"checked"`
	// Steps and Moves report the best-response walk.
	Steps int `json:"steps"`
	Moves int `json:"moves"`
	// PoA and PoS report the experiment workload (0 when not computed).
	PoA float64 `json:"poa"`
	PoS float64 `json:"pos"`
	// Notes carries the human-readable detail rows, in the experiment
	// suite's report idiom.
	Notes []string `json:"notes,omitempty"`
	// WallMS and Counters are the tuple's instrumented cost: wall time
	// plus the obs registry deltas attributable to the tuple's engines.
	WallMS   float64          `json:"wall_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// EvalP50/P90/P99 are the core.profile_eval_ns latency histogram
	// quantiles observed by the end of the tuple (cumulative over the
	// process, like the pprof view; masked in deterministic mode).
	EvalP50 float64 `json:"eval_p50_ns"`
	EvalP90 float64 `json:"eval_p90_ns"`
	EvalP99 float64 `json:"eval_p99_ns"`
}

// Columns is the CSV schema, one entry per CSVRecord field. Renaming or
// reordering an entry is a schema change for downstream consumers.
var Columns = []string{
	"index", "workload", "dist", "agg", "n", "k", "trial", "seed",
	"verdict", "pass", "equilibria", "checked", "steps", "moves",
	"poa", "pos", "wall_ms",
	"profiles_checked", "stability_checks", "oracle_builds", "bfs", "walk_steps",
	"eval_p50_ns", "eval_p90_ns", "eval_p99_ns",
}

// counterColumns maps the tail of Columns onto registry counter names.
var counterColumns = []string{
	"core.profiles_checked", "core.stability_checks",
	"oracle.builds", "graph.bfs", "dynamics.steps",
}

// CSVRecord renders the result as one row under Columns. With
// deterministic set, the volatile timing fields (wall_ms, the latency
// quantiles) render as 0 so identical grids produce byte-identical
// files; the work counters are deterministic and stay.
func (r *Result) CSVRecord(deterministic bool) []string {
	m := r.Masked(deterministic)
	row := []string{
		strconv.Itoa(m.Index), m.Workload, m.Dist, m.Agg,
		strconv.Itoa(m.N), strconv.Itoa(m.K), strconv.Itoa(m.Trial),
		strconv.FormatInt(m.Seed, 10),
		m.Verdict, strconv.FormatBool(m.Pass),
		strconv.Itoa(m.Equilibria), strconv.FormatUint(m.Checked, 10),
		strconv.Itoa(m.Steps), strconv.Itoa(m.Moves),
		formatFloat(m.PoA), formatFloat(m.PoS), formatFloat(m.WallMS),
	}
	for _, name := range counterColumns {
		row = append(row, strconv.FormatInt(m.Counters[name], 10))
	}
	row = append(row, formatFloat(m.EvalP50), formatFloat(m.EvalP90), formatFloat(m.EvalP99))
	return row
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Masked returns the result with the volatile fields zeroed when
// deterministic is set: wall time, the latency quantiles, and every
// *_nanos counter — exactly the fields two identical runs can disagree
// on. The original is never mutated (checkpointed results keep their
// real timings).
func (r *Result) Masked(deterministic bool) *Result {
	if !deterministic {
		return r
	}
	m := *r
	m.WallMS, m.EvalP50, m.EvalP90, m.EvalP99 = 0, 0, 0, 0
	if len(r.Counters) > 0 {
		m.Counters = make(map[string]int64, len(r.Counters))
		for k, v := range r.Counters {
			if !strings.Contains(k, "nanos") {
				m.Counters[k] = v
			}
		}
	}
	return &m
}

// Checkpoint is the sweep resume state: every completed tuple's full
// result, keyed by tuple index. Results are stored unmasked, so a resume
// can re-render either deterministic or timed rows.
type Checkpoint struct {
	Results map[int]*Result `json:"results"`
}

// RunConfig wires a sweep run to its host: context, resume state, and
// the row/checkpoint sinks.
type RunConfig struct {
	// Ctx, when non-nil, is observed between tuples and inside every
	// engine; a cancel or deadline stops the sweep after dropping the
	// interrupted tuple's partial result (the resume re-runs it in full).
	Ctx context.Context
	// Done holds previously completed results by index (from a decoded
	// Checkpoint); matching tuples are replayed, not re-run.
	Done map[int]*Result
	// OnResult receives every tuple's result in index order — replayed
	// ones first flagged resumed=true, then fresh ones as they complete.
	// This is where the host emits CSV/JSONL rows.
	OnResult func(r *Result, resumed bool)
	// Save, when non-nil, persists the completed-result set after every
	// fresh tuple; failures are the host's concern (the sweep keeps
	// running on in-memory state).
	Save func(done map[int]*Result)
}

// Summary reports how a sweep ended.
type Summary struct {
	// Status is complete, or cancelled/deadline when Ctx fired.
	Status runctl.Status
	// Total, Completed and Failures count grid tuples; Resumed counts
	// the subset replayed from Done.
	Total, Completed, Failures, Resumed int
}

// Run executes the grid serially in tuple order. Each fresh tuple runs
// under exper.Instrumented so its wall time and counter deltas are
// attributed; engines observe Ctx so an interrupt is prompt.
func Run(cfg Config, rc RunConfig) (*Summary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx := rc.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	done := rc.Done
	if done == nil {
		done = map[int]*Result{}
	}
	tuples := cfg.Tuples()
	sum := &Summary{Total: len(tuples)}
	for _, t := range tuples {
		if ctx.Err() != nil {
			sum.Status = runctl.StatusFromContext(ctx)
			return sum, nil
		}
		r, resumed := done[t.Index], true
		if r == nil {
			r = runTuple(ctx, cfg, t)
			// A tuple cut short by cancellation holds partial work; keep
			// it out of the row stream and the snapshot so the resumed
			// sweep re-runs it in full (and so rows never depend on where
			// the interrupt landed).
			if ctx.Err() != nil {
				sum.Status = runctl.StatusFromContext(ctx)
				return sum, nil
			}
			resumed = false
			done[t.Index] = r
			if rc.Save != nil {
				rc.Save(done)
			}
		} else {
			sum.Resumed++
		}
		sum.Completed++
		if !r.Pass {
			sum.Failures++
		}
		if rc.OnResult != nil {
			rc.OnResult(r, resumed)
		}
	}
	sum.Status = runctl.StatusComplete
	return sum, nil
}

// runTuple executes one grid point, instrumented: the returned result
// carries the wall time and registry deltas of exactly this tuple's
// engine work.
func runTuple(ctx context.Context, cfg Config, t Tuple) *Result {
	res := &Result{Tuple: t, Seed: exper.SeedFor("sweep/"+t.id(), int64(t.Trial)+cfg.Seed), Pass: true}
	report := exper.Instrumented(func(ecfg exper.Config) *exper.Report {
		r := &exper.Report{ID: fmt.Sprintf("T%d", t.Index), Pass: true}
		runWorkload(ecfg.Ctx, cfg, t, res, r)
		return r
	}, exper.Config{Ctx: ctx})
	res.Pass = report.Pass
	res.Notes = report.Rows
	res.WallMS = report.WallMS
	res.Counters = report.Counters
	if h, ok := obs.Global().HistSnapshot()["core.profile_eval_ns"]; ok {
		res.EvalP50, res.EvalP90, res.EvalP99 = h.P50, h.P90, h.P99
	}
	return res
}

// runWorkload dispatches on the workload axis, filling res and the
// instrumented report in place.
func runWorkload(ctx context.Context, cfg Config, t Tuple, res *Result, r *exper.Report) {
	if t.K > t.N-1 {
		res.Verdict = "infeasible"
		r.AddRow("k=%d exceeds the %d possible link targets; no strategy space", t.K, t.N-1)
		return
	}
	spec, err := buildSpec(t, res.Seed)
	if err != nil {
		fail(res, r, "spec: %v", err)
		return
	}
	agg := core.SumDistances
	if t.Agg == "max" {
		agg = core.MaxDistance
	}
	switch t.Workload {
	case "enumerate":
		runEnumerate(ctx, cfg, spec, agg, res, r)
	case "dynamics":
		runDynamics(ctx, cfg, t, spec, agg, res, r)
	case "experiment":
		runExperiment(cfg, spec, agg, res, r)
	default:
		fail(res, r, "unknown workload %q", t.Workload)
	}
}

func fail(res *Result, r *exper.Report, format string, args ...any) {
	res.Verdict = "error"
	r.Pass = false
	r.AddFinding(format, args...)
	res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
}

// buildSpec realizes the tuple's game instance. "uniform" is the paper's
// uniform game; "nonuniform" keeps unit weights/costs/budget-k players
// but draws arc lengths 1..3 from the tuple RNG (the minimal non-uniform
// extension every engine supports).
func buildSpec(t Tuple, seed int64) (core.Spec, error) {
	if t.Dist == "uniform" {
		return core.NewUniform(t.N, t.K)
	}
	rng := rand.New(rand.NewSource(seed))
	d := core.NewDense(t.N)
	for u := 0; u < t.N; u++ {
		d.Budgets[u] = int64(t.K)
		for v := 0; v < t.N; v++ {
			if u != v {
				d.Lengths[u][v] = int64(1 + rng.Intn(3))
			}
		}
	}
	// Penalty must exceed n·maxLen so disconnection always dominates.
	d.M = int64(3*t.N*t.N + t.N + 1)
	if err := d.Seal(); err != nil {
		return nil, err
	}
	return d, nil
}

func (c Config) maxProfiles() uint64 {
	if c.MaxProfiles > 0 {
		return c.MaxProfiles
	}
	return 1 << 20
}

// runEnumerate scans the full profile space for pure Nash equilibria.
func runEnumerate(ctx context.Context, cfg Config, spec core.Spec, agg core.Aggregation, res *Result, r *exper.Report) {
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		fail(res, r, "space: %v", err)
		return
	}
	ne, err := core.EnumeratePureNEOpts(spec, agg, ss, core.EnumConfig{
		Ctx: ctx, MaxProfiles: cfg.maxProfiles(),
	})
	if err != nil {
		fail(res, r, "enumerate: %v", err)
		return
	}
	res.Verdict = ne.Status.String()
	res.Equilibria = len(ne.Equilibria)
	res.Checked = ne.Checked
	r.AddRow("scanned %d profiles (%s): %d pure equilibria", ne.Checked, ne.Status, len(ne.Equilibria))
}

// runDynamics runs one seeded round-robin best-response walk.
func runDynamics(ctx context.Context, cfg Config, t Tuple, spec core.Spec, agg core.Aggregation, res *Result, r *exper.Report) {
	rng := rand.New(rand.NewSource(res.Seed + 1)) // +1: decorrelate from instance generation
	start := dynamics.RandomStart(rng, t.N, t.K)
	w, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(t.N), agg, dynamics.Options{
		Ctx: ctx, MaxSteps: cfg.MaxSteps, DetectLoops: true,
	})
	if err != nil {
		fail(res, r, "walk: %v", err)
		return
	}
	res.Steps, res.Moves = w.Steps, w.Moves
	switch {
	case w.Converged:
		res.Verdict = "converged"
	case w.Loop != nil:
		res.Verdict = "looped"
	case w.Status == runctl.StatusBudget:
		res.Verdict = "exhausted"
	default:
		res.Verdict = w.Status.String()
	}
	r.AddRow("walk %s after %d steps (%d moves)", res.Verdict, w.Steps, w.Moves)
}

// runExperiment computes exact PoA/PoS. A game with no pure equilibrium
// and a scan over budget are legitimate recorded verdicts, not failures.
func runExperiment(cfg Config, spec core.Spec, agg core.Aggregation, res *Result, r *exper.Report) {
	poa, pos, err := core.PriceOfAnarchyExact(spec, agg, cfg.maxProfiles())
	if err != nil {
		var lim *core.EnumerationLimitError
		switch {
		case errors.As(err, &lim):
			res.Verdict = "budget"
			r.AddRow("search space exceeds the %d-profile budget; PoA not computed", cfg.maxProfiles())
		case strings.Contains(err.Error(), "no pure Nash equilibrium"):
			res.Verdict = "no-ne"
			r.AddRow("game has no pure Nash equilibrium; PoA undefined")
		default:
			fail(res, r, "poa: %v", err)
		}
		return
	}
	res.Verdict = "complete"
	res.PoA, res.PoS = poa, pos
	r.AddRow("PoA=%.4f PoS=%.4f", poa, pos)
}

// SortedIndices returns the completed indices of a checkpoint in tuple
// order, for replay and diagnostics.
func (c *Checkpoint) SortedIndices() []int {
	idx := make([]int, 0, len(c.Results))
	for i := range c.Results {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}
