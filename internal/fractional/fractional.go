// Package fractional implements the fractional BBC games of Section 3.2:
// each node buys fractions of links subject to its budget, the pairwise
// cost is the cost of a minimum-cost unit flow in the induced capacitated
// network (with an uncapacitated penalty arc of length M between every
// pair), and — by Theorem 3 — a pure Nash equilibrium always exists.
//
// The package provides cost evaluation on top of the flow substrate,
// δ-transfer improvement dynamics (hill climbing over budget-mass
// transfers between links), and ε-stability certification, which together
// demonstrate the theorem computationally: improvement dynamics settle at
// an ε-stable fractional profile even on games whose integral version has
// no pure equilibrium.
package fractional

import (
	"fmt"
	"math"

	"bbc/internal/core"
	"bbc/internal/flow"
)

// Game is a fractional BBC game sharing the integral game's spec.
type Game struct {
	Spec core.Spec
}

// Profile is a fractional strategy selection: Alloc[u][v] is the fraction
// a_u(v) of link (u, v) that u buys. Diagonal entries must be zero.
type Profile struct {
	Alloc [][]float64
}

// NewProfile returns the all-zero fractional profile for n nodes.
func NewProfile(n int) Profile {
	alloc := make([][]float64, n)
	for u := range alloc {
		alloc[u] = make([]float64, n)
	}
	return Profile{Alloc: alloc}
}

// FromIntegral lifts an integral profile into the fractional space with
// allocation 1 on every bought link.
func FromIntegral(spec core.Spec, p core.Profile) Profile {
	fp := NewProfile(spec.N())
	for u, s := range p {
		for _, v := range s {
			fp.Alloc[u][v] = 1
		}
	}
	return fp
}

// Clone deep-copies the profile.
func (p Profile) Clone() Profile {
	c := NewProfile(len(p.Alloc))
	for u := range p.Alloc {
		copy(c.Alloc[u], p.Alloc[u])
	}
	return c
}

// Validate checks non-negativity, zero diagonal and the budget constraint
// Σ_v a_u(v)·c(u,v) ≤ b(u) (with a small tolerance for float drift).
func (g *Game) Validate(p Profile) error {
	n := g.Spec.N()
	if len(p.Alloc) != n {
		return fmt.Errorf("fractional: profile covers %d nodes, want %d", len(p.Alloc), n)
	}
	for u := 0; u < n; u++ {
		if len(p.Alloc[u]) != n {
			return fmt.Errorf("fractional: row %d has length %d, want %d", u, len(p.Alloc[u]), n)
		}
		if p.Alloc[u][u] != 0 {
			return fmt.Errorf("fractional: node %d allocates to itself", u)
		}
		spent := 0.0
		for v := 0; v < n; v++ {
			a := p.Alloc[u][v]
			if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("fractional: invalid allocation a[%d][%d] = %v", u, v, a)
			}
			if u != v {
				spent += a * float64(g.Spec.LinkCost(u, v))
			}
		}
		if spent > float64(g.Spec.Budget(u))+1e-6 {
			return fmt.Errorf("fractional: node %d spends %v, budget %d", u, spent, g.Spec.Budget(u))
		}
	}
	return nil
}

// PairCost returns cost_{uv}: the cost of a minimum-cost unit flow from u
// to v in the network induced by the profile, where any shortfall routes
// over the uncapacitated penalty arc at cost M. (An intermediate penalty
// arc never beats the direct one, so only the direct arc is materialized.)
func (g *Game) PairCost(p Profile, u, v int) float64 {
	if u == v {
		return 0
	}
	nw := g.network(p)
	shipped, cost := nw.MinCostFlow(u, v, 1)
	return cost + (1-shipped)*float64(g.Spec.Penalty())
}

// network builds the capacitated flow network for the profile.
func (g *Game) network(p Profile) *flow.Network {
	n := g.Spec.N()
	nw := flow.NewNetwork(n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x == y {
				continue
			}
			if a := p.Alloc[x][y]; a > flow.Eps {
				nw.AddArc(x, y, a, float64(g.Spec.Length(x, y)))
			}
		}
	}
	return nw
}

// NodeCost returns u's fractional cost Σ_v w(u,v)·cost_{uv}. The flow
// network is rebuilt per destination via Reset, so the evaluation runs
// n−1 min-cost-flow computations.
func (g *Game) NodeCost(p Profile, u int) float64 {
	n := g.Spec.N()
	nw := g.network(p)
	total := 0.0
	m := float64(g.Spec.Penalty())
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		w := g.Spec.Weight(u, v)
		if w == 0 {
			continue
		}
		shipped, cost := nw.MinCostFlow(u, v, 1)
		nw.Reset()
		total += float64(w) * (cost + (1-shipped)*m)
	}
	return total
}

// SocialCost returns the sum of all node costs.
func (g *Game) SocialCost(p Profile) float64 {
	total := 0.0
	for u := 0; u < g.Spec.N(); u++ {
		total += g.NodeCost(p, u)
	}
	return total
}

// Spend returns how much of u's budget the profile consumes.
func (g *Game) Spend(p Profile, u int) float64 {
	spent := 0.0
	for v, a := range p.Alloc[u] {
		if v != u {
			spent += a * float64(g.Spec.LinkCost(u, v))
		}
	}
	return spent
}

// TransferImprove greedily improves node u's allocation by δ-granularity
// budget-mass moves: shifting δ worth of budget from one link (or from
// unspent budget) to another link whenever that strictly lowers u's cost
// by more than eps. It returns the improved profile (others' rows shared,
// u's row fresh) and the total improvement achieved.
func (g *Game) TransferImprove(p Profile, u int, delta, eps float64, maxMoves int) (Profile, float64) {
	cur := p.Clone()
	curCost := g.NodeCost(cur, u)
	improved := 0.0
	n := g.Spec.N()
	for move := 0; move < maxMoves; move++ {
		bestCost := curCost
		var bestRow []float64
		// Sources of mass: each link with positive allocation, or budget
		// slack (source = -1).
		sources := []int{-1}
		for v := 0; v < n; v++ {
			if v != u && cur.Alloc[u][v] > flow.Eps {
				sources = append(sources, v)
			}
		}
		slack := float64(g.Spec.Budget(u)) - g.Spend(cur, u)
		for _, src := range sources {
			for dst := 0; dst < n; dst++ {
				if dst == u || dst == src {
					continue
				}
				row := append([]float64(nil), cur.Alloc[u]...)
				dstCost := float64(g.Spec.LinkCost(u, dst))
				var amount float64
				if src < 0 {
					amount = math.Min(delta, slack/dstCost)
				} else {
					srcCost := float64(g.Spec.LinkCost(u, src))
					amount = math.Min(delta, row[src]*srcCost/dstCost)
					if amount <= flow.Eps {
						continue
					}
					row[src] -= amount * dstCost / srcCost
					if row[src] < 0 {
						row[src] = 0
					}
				}
				if amount <= flow.Eps {
					continue
				}
				row[dst] += amount
				trial := Profile{Alloc: cur.Alloc}
				trialAlloc := make([][]float64, n)
				copy(trialAlloc, cur.Alloc)
				trialAlloc[u] = row
				trial.Alloc = trialAlloc
				if c := g.NodeCost(trial, u); c < bestCost-eps {
					bestCost = c
					bestRow = row
				}
			}
		}
		if bestRow == nil {
			break
		}
		alloc := make([][]float64, n)
		copy(alloc, cur.Alloc)
		alloc[u] = bestRow
		cur = Profile{Alloc: alloc}
		improved += curCost - bestCost
		curCost = bestCost
	}
	return cur, improved
}

// Options tunes the improvement dynamics.
type Options struct {
	// Delta is the transfer granularity; zero means 0.25.
	Delta float64
	// Eps is the improvement threshold; zero means 1e-6.
	Eps float64
	// MaxRounds bounds full passes over the nodes; zero means 200.
	MaxRounds int
	// MovesPerTurn bounds transfers per node per turn; zero means 50.
	MovesPerTurn int
}

func (o Options) delta() float64 {
	if o.Delta > 0 {
		return o.Delta
	}
	return 0.25
}

func (o Options) eps() float64 {
	if o.Eps > 0 {
		return o.Eps
	}
	return 1e-6
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 200
}

func (o Options) movesPerTurn() int {
	if o.MovesPerTurn > 0 {
		return o.MovesPerTurn
	}
	return 50
}

// ImprovementDynamics runs round-robin δ-transfer improvement until a full
// round produces no improvement (a δ-granular equilibrium) or rounds run
// out. It reports the final profile and whether it settled.
func (g *Game) ImprovementDynamics(start Profile, opts Options) (Profile, bool) {
	cur := start.Clone()
	n := g.Spec.N()
	for round := 0; round < opts.maxRounds(); round++ {
		roundGain := 0.0
		for u := 0; u < n; u++ {
			next, gain := g.TransferImprove(cur, u, opts.delta(), opts.eps(), opts.movesPerTurn())
			cur = next
			roundGain += gain
		}
		if roundGain <= opts.eps() {
			return cur, true
		}
	}
	return cur, false
}

// EpsilonStable reports whether no node can lower its cost by more than
// eps with a single δ-granularity transfer. It is the (δ, ε)-equilibrium
// certificate for the Theorem 3 demonstration.
func (g *Game) EpsilonStable(p Profile, delta, eps float64) bool {
	for u := 0; u < g.Spec.N(); u++ {
		_, gain := g.TransferImprove(p, u, delta, eps, 1)
		if gain > eps {
			return false
		}
	}
	return true
}
