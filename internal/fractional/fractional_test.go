package fractional

import (
	"math"
	"math/rand"
	"testing"

	"bbc/internal/core"
)

func ringProfile(n int) core.Profile {
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		p[u] = core.Strategy{(u + 1) % n}
	}
	return p
}

func TestValidate(t *testing.T) {
	spec := core.MustUniform(4, 2)
	g := &Game{Spec: spec}
	tests := []struct {
		name    string
		mutate  func(p *Profile)
		wantErr bool
	}{
		{name: "zero profile ok", mutate: func(*Profile) {}},
		{name: "within budget", mutate: func(p *Profile) { p.Alloc[0][1] = 1; p.Alloc[0][2] = 1 }},
		{name: "fractional ok", mutate: func(p *Profile) { p.Alloc[0][1] = 0.3; p.Alloc[0][2] = 0.9 }},
		{name: "over budget", mutate: func(p *Profile) { p.Alloc[0][1] = 1.5; p.Alloc[0][2] = 0.6 }, wantErr: true},
		{name: "negative", mutate: func(p *Profile) { p.Alloc[0][1] = -0.1 }, wantErr: true},
		{name: "self allocation", mutate: func(p *Profile) { p.Alloc[2][2] = 0.5 }, wantErr: true},
		{name: "nan", mutate: func(p *Profile) { p.Alloc[0][1] = math.NaN() }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := NewProfile(4)
			tt.mutate(&p)
			err := g.Validate(p)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFromIntegralMatchesIntegralCosts(t *testing.T) {
	// With 0/1 allocations the min-cost unit flow routes along shortest
	// paths, so fractional costs must equal the integral game's costs.
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(2)
		spec := core.MustUniform(n, k)
		p := core.NewEmptyProfile(n)
		for u := 0; u < n; u++ {
			perm := rng.Perm(n)
			s := make([]int, 0, k)
			for _, v := range perm {
				if v != u && len(s) < k {
					s = append(s, v)
				}
			}
			p[u] = core.NormalizeStrategy(s)
		}
		g := &Game{Spec: spec}
		fp := FromIntegral(spec, p)
		if err := g.Validate(fp); err != nil {
			t.Fatal(err)
		}
		realized := p.Realize(spec)
		for u := 0; u < n; u++ {
			want := float64(core.NodeCost(spec, realized, u, core.SumDistances))
			got := g.NodeCost(fp, u)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("trial %d node %d: fractional %v != integral %v", trial, u, got, want)
			}
		}
	}
}

func TestPairCostSplitsAcrossHalfLinks(t *testing.T) {
	// 0 buys half of a direct link to 1 and half of a link to 2, and 2
	// fully links 1: the unit flow from 0 to 1 splits 0.5 direct (cost 1)
	// and 0.5 via 2 (cost 2), total 1.5.
	spec := core.MustUniform(3, 1)
	g := &Game{Spec: spec}
	p := NewProfile(3)
	p.Alloc[0][1] = 0.5
	p.Alloc[0][2] = 0.5
	p.Alloc[2][1] = 1
	if err := g.Validate(p); err != nil {
		t.Fatal(err)
	}
	got := g.PairCost(p, 0, 1)
	if math.Abs(got-1.5) > 1e-6 {
		t.Fatalf("PairCost = %v, want 1.5", got)
	}
}

func TestPairCostShortfallPaysPenalty(t *testing.T) {
	spec := core.MustUniform(3, 1)
	g := &Game{Spec: spec}
	p := NewProfile(3)
	p.Alloc[0][1] = 0.25
	got := g.PairCost(p, 0, 1)
	want := 0.25*1 + 0.75*float64(spec.Penalty())
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("PairCost = %v, want %v", got, want)
	}
	if g.PairCost(p, 1, 1) != 0 {
		t.Fatal("self pair cost must be 0")
	}
}

func TestRingLiftsToFractionalEquilibrium(t *testing.T) {
	// Theorem 3 companion: the integral (n,1) equilibrium (directed ring)
	// remains a fractional ε-equilibrium at several transfer granularities.
	spec := core.MustUniform(6, 1)
	g := &Game{Spec: spec}
	fp := FromIntegral(spec, ringProfile(6))
	for _, delta := range []float64{0.5, 0.25, 0.1} {
		if !g.EpsilonStable(fp, delta, 1e-6) {
			t.Fatalf("ring is not fractionally stable at delta %v", delta)
		}
	}
}

func TestTransferImproveFindsGains(t *testing.T) {
	// A node with unspent budget and a disconnection penalty must improve.
	spec := core.MustUniform(4, 1)
	g := &Game{Spec: spec}
	fp := FromIntegral(spec, ringProfile(4))
	fp.Alloc[0] = make([]float64, 4) // node 0 buys nothing
	_, gain := g.TransferImprove(fp, 0, 0.5, 1e-9, 10)
	if gain <= 0 {
		t.Fatal("expected improvement from spending idle budget")
	}
}

func TestTransferImproveRespectsBudget(t *testing.T) {
	spec := core.MustUniform(5, 2)
	g := &Game{Spec: spec}
	rng := rand.New(rand.NewSource(122))
	fp := NewProfile(5)
	for u := 0; u < 5; u++ {
		rem := 2.0
		for v := 0; v < 5; v++ {
			if v == u || rem <= 0 {
				continue
			}
			a := rng.Float64() * rem
			fp.Alloc[u][v] = a
			rem -= a
		}
	}
	if err := g.Validate(fp); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		next, _ := g.TransferImprove(fp, u, 0.3, 1e-9, 20)
		if err := g.Validate(next); err != nil {
			t.Fatalf("node %d: transfer broke feasibility: %v", u, err)
		}
	}
}

func TestSpend(t *testing.T) {
	spec := core.MustUniform(3, 2)
	g := &Game{Spec: spec}
	p := NewProfile(3)
	p.Alloc[0][1] = 0.75
	p.Alloc[0][2] = 0.5
	if got := g.Spend(p, 0); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("Spend = %v, want 1.25", got)
	}
}

func TestImprovementDynamicsSettlesOnStableStart(t *testing.T) {
	spec := core.MustUniform(5, 1)
	g := &Game{Spec: spec}
	fp := FromIntegral(spec, ringProfile(5))
	final, settled := g.ImprovementDynamics(fp, Options{Delta: 0.5, MaxRounds: 5})
	if !settled {
		t.Fatal("dynamics should settle immediately on a fractional equilibrium")
	}
	if g.SocialCost(final) != g.SocialCost(fp) {
		t.Fatal("settled profile changed social cost")
	}
}

func TestSocialCostAdditive(t *testing.T) {
	spec := core.MustUniform(4, 1)
	g := &Game{Spec: spec}
	fp := FromIntegral(spec, ringProfile(4))
	total := 0.0
	for u := 0; u < 4; u++ {
		total += g.NodeCost(fp, u)
	}
	if math.Abs(g.SocialCost(fp)-total) > 1e-9 {
		t.Fatal("SocialCost must equal the sum of node costs")
	}
}
