package sat

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		vars    int
		clauses []Clause
		wantErr bool
	}{
		{name: "valid", vars: 2, clauses: []Clause{{1, -2}}},
		{name: "no clauses", vars: 3},
		{name: "negative vars", vars: -1, wantErr: true},
		{name: "empty clause", vars: 2, clauses: []Clause{{}}, wantErr: true},
		{name: "zero literal", vars: 2, clauses: []Clause{{0}}, wantErr: true},
		{name: "out of range literal", vars: 2, clauses: []Clause{{3}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.vars, tt.clauses...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestSolveKnownFormulas(t *testing.T) {
	tests := []struct {
		name string
		f    *Formula
		sat  bool
	}{
		{name: "trivially sat", f: MustNew(1, Clause{1}), sat: true},
		{name: "contradiction", f: MustNew(1, Clause{1}, Clause{-1}), sat: false},
		{name: "empty formula", f: MustNew(3), sat: true},
		{
			name: "3sat satisfiable",
			f:    MustNew(3, Clause{1, 2, 3}, Clause{-1, -2, 3}, Clause{1, -2, -3}),
			sat:  true,
		},
		{
			name: "pigeonhole 2 into 1",
			// x1: pigeon1 in hole1, x2: pigeon2 in hole1; both must be
			// placed, hole holds one.
			f:   MustNew(2, Clause{1}, Clause{2}, Clause{-1, -2}),
			sat: false,
		},
		{
			name: "all 2-clauses over 2 vars",
			f: MustNew(2,
				Clause{1, 2}, Clause{1, -2}, Clause{-1, 2}, Clause{-1, -2}),
			sat: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, ok := tt.f.Solve()
			if ok != tt.sat {
				t.Fatalf("Solve sat = %v, want %v", ok, tt.sat)
			}
			if ok && !tt.f.Satisfies(a) {
				t.Fatalf("returned assignment %v does not satisfy %v", a, tt.f)
			}
		})
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		numVars := 3 + rng.Intn(6)
		numClauses := rng.Intn(5 * numVars)
		f := Random3SAT(rng, numVars, numClauses)
		_, wantSat := f.SolveBruteForce()
		a, gotSat := f.Solve()
		if gotSat != wantSat {
			t.Fatalf("trial %d (%v): DPLL %v, brute force %v", trial, f, gotSat, wantSat)
		}
		if gotSat && !f.Satisfies(a) {
			t.Fatalf("trial %d: invalid assignment", trial)
		}
	}
}

func TestHardUnsatRegion(t *testing.T) {
	// Random 3SAT at clause/var ratio 6 is almost surely unsatisfiable;
	// solving it exercises full backtracking.
	rng := rand.New(rand.NewSource(52))
	unsat := 0
	for trial := 0; trial < 20; trial++ {
		f := Random3SAT(rng, 10, 60)
		_, bf := f.SolveBruteForce()
		_, got := f.Solve()
		if got != bf {
			t.Fatalf("trial %d: DPLL %v != brute force %v", trial, got, bf)
		}
		if !got {
			unsat++
		}
	}
	if unsat == 0 {
		t.Fatal("expected at least one unsatisfiable dense formula")
	}
}

func TestLiteralAccessors(t *testing.T) {
	if Literal(3).Var() != 3 || Literal(-3).Var() != 3 {
		t.Fatal("Var wrong")
	}
	if !Literal(3).Positive() || Literal(-3).Positive() {
		t.Fatal("Positive wrong")
	}
}

func TestSatisfiesRejectsShortAssignment(t *testing.T) {
	f := MustNew(3, Clause{3})
	if f.Satisfies(Assignment{true, true}) {
		t.Fatal("short assignment should not satisfy")
	}
}

func TestString(t *testing.T) {
	f := MustNew(2, Clause{1, -2})
	if got := f.String(); got != "(x1 | !x2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRandom3SATShape(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := Random3SAT(rng, 5, 12)
	if len(f.Clauses) != 12 {
		t.Fatalf("clauses = %d, want 12", len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause %v does not have 3 literals", c)
		}
		vars := map[int]bool{}
		for _, l := range c {
			if l.Var() < 1 || l.Var() > 5 {
				t.Fatalf("literal %d out of range", l)
			}
			vars[l.Var()] = true
		}
		if len(vars) != 3 {
			t.Fatalf("clause %v repeats a variable", c)
		}
	}
}
