// Package sat provides CNF formulas and a small DPLL solver. It is the
// substrate for the Theorem 2 reproduction: the paper reduces 3SAT to
// pure-Nash-equilibrium existence in non-uniform BBC games, and we verify
// the reduction on concrete formulas by comparing the game-side outcome
// against this solver.
package sat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Literal encodes variable v (1-based) as +v and its negation as -v.
type Literal int

// Var returns the 1-based variable index of the literal.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is un-negated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New builds a formula, validating that every literal references a variable
// in range and no clause is empty.
func New(numVars int, clauses ...Clause) (*Formula, error) {
	if numVars < 0 {
		return nil, fmt.Errorf("sat: negative variable count %d", numVars)
	}
	f := &Formula{NumVars: numVars}
	for i, c := range clauses {
		if len(c) == 0 {
			return nil, fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() > numVars {
				return nil, fmt.Errorf("sat: clause %d has invalid literal %d", i, l)
			}
		}
		f.Clauses = append(f.Clauses, append(Clause(nil), c...))
	}
	return f, nil
}

// MustNew is New that panics on error; intended for literal test fixtures.
func MustNew(numVars int, clauses ...Clause) *Formula {
	f, err := New(numVars, clauses...)
	if err != nil {
		panic(err)
	}
	return f
}

// Assignment maps 1-based variable indices to truth values. Index 0 is
// unused.
type Assignment []bool

// Satisfies reports whether the assignment satisfies the formula.
func (f *Formula) Satisfies(a Assignment) bool {
	if len(a) < f.NumVars+1 {
		return false
	}
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Solve runs DPLL with unit propagation and pure-literal elimination. It
// returns a satisfying assignment and true, or nil and false when the
// formula is unsatisfiable.
func (f *Formula) Solve() (Assignment, bool) {
	// values: 0 unassigned, 1 true, -1 false.
	values := make([]int8, f.NumVars+1)
	if !dpll(f.Clauses, values) {
		return nil, false
	}
	a := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		a[v] = values[v] == 1
	}
	if !f.Satisfies(a) {
		panic("sat: internal error: DPLL produced a non-satisfying assignment")
	}
	return a, true
}

// Satisfiable reports whether the formula has a satisfying assignment.
func (f *Formula) Satisfiable() bool {
	_, ok := f.Solve()
	return ok
}

func dpll(clauses []Clause, values []int8) bool {
	// Simplify: detect satisfied clauses, unit clauses, conflicts.
	for {
		unit := Literal(0)
		allSat := true
		for _, c := range clauses {
			sat := false
			unassigned := 0
			var last Literal
			for _, l := range c {
				switch values[l.Var()] {
				case 0:
					unassigned++
					last = l
				case 1:
					if l.Positive() {
						sat = true
					}
				case -1:
					if !l.Positive() {
						sat = true
					}
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			allSat = false
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				unit = last
			}
		}
		if allSat {
			// Assign remaining variables arbitrarily (true).
			for v := 1; v < len(values); v++ {
				if values[v] == 0 {
					values[v] = 1
				}
			}
			return true
		}
		if unit == 0 {
			break
		}
		assign(values, unit)
	}

	// Pure literal elimination. Assigning a pure literal true never loses
	// satisfiability, so no backtracking point is needed here.
	if lit := findPure(clauses, values); lit != 0 {
		assign(values, lit)
		return dpll(clauses, values)
	}

	// Branch on the first unassigned variable.
	v := 0
	for i := 1; i < len(values); i++ {
		if values[i] == 0 {
			v = i
			break
		}
	}
	if v == 0 {
		// All assigned but not allSat -> some clause must be violated; the
		// simplification loop would have returned false, so this is
		// unreachable, kept as a guard.
		return false
	}
	for _, val := range []int8{1, -1} {
		values[v] = val
		snapshot := append([]int8(nil), values...)
		if dpll(clauses, values) {
			return true
		}
		copy(values, snapshot)
		values[v] = 0
	}
	return false
}

func assign(values []int8, l Literal) {
	if l.Positive() {
		values[l.Var()] = 1
	} else {
		values[l.Var()] = -1
	}
}

// findPure returns a literal whose variable occurs with only one polarity
// among not-yet-satisfied clauses, or 0 if none exists.
func findPure(clauses []Clause, values []int8) Literal {
	pos := make(map[int]bool)
	neg := make(map[int]bool)
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if (values[l.Var()] == 1 && l.Positive()) || (values[l.Var()] == -1 && !l.Positive()) {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		for _, l := range c {
			if values[l.Var()] != 0 {
				continue
			}
			if l.Positive() {
				pos[l.Var()] = true
			} else {
				neg[l.Var()] = true
			}
		}
	}
	vars := make([]int, 0, len(pos)+len(neg))
	for v := range pos {
		vars = append(vars, v)
	}
	for v := range neg {
		if !pos[v] {
			vars = append(vars, v)
		}
	}
	sort.Ints(vars) // determinism
	for _, v := range vars {
		if pos[v] && !neg[v] {
			return Literal(v)
		}
		if neg[v] && !pos[v] {
			return Literal(-v)
		}
	}
	return 0
}

// SolveBruteForce enumerates all assignments; it is the independent
// reference oracle used in tests (exponential, keep NumVars small).
func (f *Formula) SolveBruteForce() (Assignment, bool) {
	if f.NumVars > 24 {
		panic("sat: brute force limited to 24 variables")
	}
	a := make(Assignment, f.NumVars+1)
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for v := 1; v <= f.NumVars; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return append(Assignment(nil), a...), true
		}
	}
	return nil, false
}

// Random3SAT generates a random 3SAT formula with the given clause count.
// Each clause has three distinct variables with random polarities.
func Random3SAT(rng *rand.Rand, numVars, numClauses int) *Formula {
	if numVars < 3 {
		panic("sat: Random3SAT needs at least 3 variables")
	}
	f := &Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		perm := rng.Perm(numVars)[:3]
		c := make(Clause, 3)
		for j, v := range perm {
			lit := Literal(v + 1)
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			c[j] = lit
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// String renders the formula in a compact human-readable form.
func (f *Formula) String() string {
	var b strings.Builder
	for i, c := range f.Clauses {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteByte('(')
		for j, l := range c {
			if j > 0 {
				b.WriteString(" | ")
			}
			if !l.Positive() {
				b.WriteByte('!')
			}
			fmt.Fprintf(&b, "x%d", l.Var())
		}
		b.WriteByte(')')
	}
	return b.String()
}
