// Package store is the durable job store under the batch-solve service:
// an append-only write-ahead log of job-state transitions plus a
// periodically compacted index snapshot, both written through the same
// hardened persistence envelopes as runctl checkpoints.
//
// Layout inside the store directory:
//
//	wal.jsonl        append-only JSONL of transitions, one checksummed
//	                 record per line (kinds: submit, start, finish)
//	index.ckpt       compacted snapshot: a runctl v2 checkpoint envelope
//	                 (kind "job-index") holding every retained job and
//	                 the WAL sequence number it covers; generations
//	                 rotate to index.ckpt.prev, corruption quarantines
//	                 to index.ckpt.corrupt (runctl.Store policy)
//	quarantine.jsonl unreplayable WAL records and corrupt regions,
//	                 diverted rather than trusted or destroyed
//
// Crash invariants, fault-swept in crashsweep_test.go:
//
//   - A transition whose append returned success is durable: it is
//     fsynced in the WAL (or already covered by a published index) and
//     survives any later crash. The only exception is a lying fsync
//     (ModeDropSync), which can lose the unsynced tail.
//   - Whatever single filesystem operation fails, a reopened store
//     recovers a consistent prefix of the acknowledged transitions —
//     never a torn hybrid, and Open never wedges: corrupt state is
//     quarantined and replay continues from what is trustworthy.
//   - Compaction publishes the index before truncating the WAL, and
//     replay skips WAL records the index already covers, so a crash
//     between the two steps double-applies nothing.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"bbc/internal/faultfs"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// WAL record kinds: the three job-state transitions the service
// persists. "submit" and "finish" carry the full job record (upsert
// semantics make replay idempotent); "start" patches an existing job.
const (
	KindSubmit = "submit"
	KindStart  = "start"
	KindFinish = "finish"
)

// indexKind is the runctl checkpoint kind of the compacted index.
const indexKind = "job-index"

// JobRecord is the durable face of one job: everything needed to serve
// a historical result, answer a dedup probe across restarts, or
// re-queue work orphaned by a crash. Times are absolute unix
// milliseconds (the in-memory serve layer uses process-relative times;
// the store must survive the process).
type JobRecord struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	Client string          `json:"client,omitempty"`
	Mode   string          `json:"mode"`
	Req    json.RawMessage `json:"req,omitempty"`

	State     string          `json:"state"`
	RunStatus string          `json:"run_status,omitempty"`
	Complete  bool            `json:"complete,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Reason    string          `json:"reason,omitempty"`
	// RetryAfterMS is the retry hint attached to rejected jobs.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	Checkpoint string `json:"checkpoint,omitempty"`
	Resumable  bool   `json:"resumable,omitempty"`

	SubmittedMS int64 `json:"submitted_unix_ms,omitempty"`
	StartedMS   int64 `json:"started_unix_ms,omitempty"`
	FinishedMS  int64 `json:"finished_unix_ms,omitempty"`
}

// clone returns a private copy (RawMessage fields are shared but
// treated as immutable everywhere).
func (r *JobRecord) clone() *JobRecord {
	c := *r
	return &c
}

// terminal reports whether the record is in a terminal state.
func (r *JobRecord) terminal() bool {
	return r.State == "done" || r.State == "rejected"
}

// walRecord is one WAL line. CRC covers the record marshaled with CRC
// cleared, in the runctl checksum format ("crc32c:%08x"), so bit rot
// anywhere in the line is detected before replay trusts it.
type walRecord struct {
	Seq    int64      `json:"seq"`
	Kind   string     `json:"kind"`
	ID     string     `json:"id,omitempty"`
	TimeMS int64      `json:"time_ms,omitempty"`
	Job    *JobRecord `json:"job,omitempty"`
	CRC    string     `json:"crc,omitempty"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the record's CRC with the CRC field excluded.
func (w *walRecord) checksum() (string, error) {
	saved := w.CRC
	w.CRC = ""
	data, err := json.Marshal(w)
	w.CRC = saved
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(data, castagnoli)), nil
}

// indexSnapshot is the payload of the compacted index checkpoint.
type indexSnapshot struct {
	// LastSeq is the highest WAL sequence number the snapshot covers;
	// replay skips WAL records at or below it.
	LastSeq int64 `json:"last_seq"`
	// Jobs is every retained job in submission order.
	Jobs []*JobRecord `json:"jobs"`
}

// Options tunes a Store. The zero value is production-ready.
type Options struct {
	// FS is the filesystem to operate on (nil = the real OS).
	FS faultfs.FS
	// CompactEvery is how many WAL appends trigger an index compaction
	// (0 = 256).
	CompactEvery int
	// MaxJobs bounds the terminal jobs retained across compactions
	// (0 = 4096). Queued/running jobs are never evicted.
	MaxJobs int
	// Reg receives the store.* metrics (nil = off).
	Reg *obs.Registry
	// Journal, when non-nil, receives store lifecycle records (replay,
	// quarantine, compaction, append errors).
	Journal *obs.Journal
}

func (o Options) compactEvery() int {
	if o.CompactEvery > 0 {
		return o.CompactEvery
	}
	return 256
}

func (o Options) maxJobs() int {
	if o.MaxJobs > 0 {
		return o.MaxJobs
	}
	return 4096
}

// Recovery reports what Open found and salvaged.
type Recovery struct {
	// IndexJobs is how many jobs the index snapshot restored.
	IndexJobs int
	// IndexFallback is true when the previous index generation was used.
	IndexFallback bool
	// IndexQuarantined, when non-empty, is where a corrupt primary index
	// was moved.
	IndexQuarantined string
	// Replayed is how many WAL records were applied on top of the index.
	Replayed int
	// Quarantined is how many WAL records (or corrupt-region lines) were
	// diverted to quarantine.jsonl.
	Quarantined int
	// TornBytes is the size of the truncated torn WAL tail (an expected
	// crash artifact, distinct from quarantined corruption).
	TornBytes int64
	// Requeue is how many recovered jobs are queued/running — work
	// orphaned by a crash that the service should re-queue.
	Requeue int
}

// Store is the durable job store. All methods are safe for concurrent
// use. Create with Open; the caller owns Close.
type Store struct {
	mu      sync.Mutex
	dir     string
	fsys    faultfs.FS
	opts    Options
	reg     *obs.Registry
	journal *obs.Journal

	index   *runctl.Store
	walPath string
	qPath   string
	wal     faultfs.File
	walSize int64
	seq     int64
	appends int
	jobs    map[string]*JobRecord
	order   []string
	closed  bool
}

// Open loads (or creates) the store in dir: the index snapshot is
// restored through the runctl.Store recovery path (fallback generation,
// quarantine), then the WAL is replayed on top — skipping records the
// index covers, truncating a torn tail, and quarantining unreplayable
// records — and reopened for appending.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: create dir: %w", err)
	}
	fsys := faultfs.Or(opts.FS)
	s := &Store{
		dir:     dir,
		fsys:    fsys,
		opts:    opts,
		reg:     opts.Reg,
		journal: opts.Journal,
		index:   &runctl.Store{Path: filepath.Join(dir, "index.ckpt"), FS: fsys, Retries: 2},
		walPath: filepath.Join(dir, "wal.jsonl"),
		qPath:   filepath.Join(dir, "quarantine.jsonl"),
		jobs:    make(map[string]*JobRecord),
	}
	rec := &Recovery{}
	s.loadIndex(rec)
	if err := s.replayWAL(rec); err != nil {
		return nil, nil, err
	}
	wal, err := fsys.OpenAppend(s.walPath)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = wal
	if fi, serr := fsys.Stat(s.walPath); serr == nil {
		s.walSize = fi.Size()
	}
	for _, id := range s.order {
		if !s.jobs[id].terminal() {
			rec.Requeue++
		}
	}
	s.journal.Event("store_open", map[string]any{
		"dir": dir, "jobs": len(s.order), "replayed": rec.Replayed,
		"quarantined": rec.Quarantined, "torn_bytes": rec.TornBytes,
		"requeue": rec.Requeue, "index_fallback": rec.IndexFallback,
	})
	return s, rec, nil
}

// loadIndex restores the compacted snapshot. Any failure — missing,
// corrupt beyond both generations, wrong kind — degrades to WAL-only
// recovery: a store must make progress, not wedge on stale state.
func (s *Store) loadIndex(rec *Recovery) {
	env, lrec, err := s.index.TryLoad()
	if lrec != nil {
		rec.IndexFallback = lrec.Fallback
		rec.IndexQuarantined = lrec.Quarantined
	}
	switch {
	case err != nil:
		s.journal.Event("store_index_unreadable", map[string]any{"path": s.index.Path, "error": err.Error()})
		return
	case env == nil:
		return // first open: no snapshot yet
	}
	var snap indexSnapshot
	if derr := env.Decode(indexKind, indexKind, &snap); derr != nil {
		s.journal.Event("store_index_mismatch", map[string]any{"path": s.index.Path, "error": derr.Error()})
		return
	}
	s.seq = snap.LastSeq
	for _, j := range snap.Jobs {
		if _, ok := s.jobs[j.ID]; !ok {
			s.order = append(s.order, j.ID)
		}
		s.jobs[j.ID] = j
	}
	rec.IndexJobs = len(snap.Jobs)
}

// replayWAL applies the transitions the index does not cover. The first
// corrupt complete line (bad JSON or checksum) ends the trustworthy
// prefix: it and everything after it is quarantined and the WAL is
// truncated back to the prefix. An unterminated final line is a torn
// tail from a crashed append — truncated, not quarantined. Semantically
// unreplayable records (unknown kind, a start for an unknown job) are
// quarantined individually and replay continues.
func (s *Store) replayWAL(rec *Recovery) error {
	data, err := s.fsys.ReadFile(s.walPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read wal: %w", err)
	}
	var (
		validLen int64
		rest     = data
	)
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			rec.TornBytes = int64(len(rest))
			break
		}
		line := rest[:nl]
		var w walRecord
		bad := json.Unmarshal(line, &w) != nil
		if !bad {
			want, cerr := w.checksum()
			bad = cerr != nil || w.CRC != want
		}
		if bad {
			// Corrupt complete line: everything from here is untrustworthy.
			region := rest
			rec.Quarantined += s.quarantine(region)
			rec.TornBytes = 0 // the region subsumes any tail
			s.journal.Event("store_wal_corrupt", map[string]any{
				"offset": validLen, "bytes": len(region),
			})
			break
		}
		full := rest[:nl+1]
		validLen += int64(nl) + 1
		rest = rest[nl+1:]
		if w.Seq <= s.seq {
			continue // the index snapshot already covers this transition
		}
		if aerr := s.apply(&w); aerr != nil {
			rec.Quarantined += s.quarantine(full)
			s.journal.Event("store_record_unreplayable", map[string]any{
				"seq": w.Seq, "kind": w.Kind, "id": w.ID, "error": aerr.Error(),
			})
			s.seq = w.Seq // keep sequence numbers monotonic past the hole
			continue
		}
		s.seq = w.Seq
		rec.Replayed++
		s.reg.Inc(obs.MStoreReplayed)
	}
	if validLen < int64(len(data)) {
		if terr := s.fsys.Truncate(s.walPath, validLen); terr != nil {
			return fmt.Errorf("store: truncate wal to valid prefix: %w", terr)
		}
	}
	return nil
}

// apply executes one WAL transition against the in-memory map.
func (s *Store) apply(w *walRecord) error {
	switch w.Kind {
	case KindSubmit, KindFinish:
		if w.Job == nil || w.Job.ID == "" {
			return fmt.Errorf("%s record without a job", w.Kind)
		}
		if _, ok := s.jobs[w.Job.ID]; !ok {
			s.order = append(s.order, w.Job.ID)
		}
		s.jobs[w.Job.ID] = w.Job
		return nil
	case KindStart:
		j, ok := s.jobs[w.ID]
		if !ok {
			return fmt.Errorf("start for unknown job %q", w.ID)
		}
		j.State = "running"
		j.StartedMS = w.TimeMS
		return nil
	default:
		return fmt.Errorf("unknown record kind %q", w.Kind)
	}
}

// quarantine diverts untrusted bytes to quarantine.jsonl (best effort:
// a failure to quarantine is journaled, never fatal) and returns how
// many lines were diverted.
func (s *Store) quarantine(region []byte) int {
	n := bytes.Count(region, []byte{'\n'})
	if n == 0 && len(region) > 0 {
		n = 1
	}
	f, err := s.fsys.OpenAppend(s.qPath)
	if err != nil {
		s.journal.Event("store_quarantine_error", map[string]any{"error": err.Error()})
		return n
	}
	if _, werr := f.Write(ensureNewline(region)); werr != nil {
		s.journal.Event("store_quarantine_error", map[string]any{"error": werr.Error()})
	}
	_ = f.Sync()
	_ = f.Close()
	s.reg.Add(obs.MStoreQuarantined, int64(n))
	return n
}

func ensureNewline(b []byte) []byte {
	if len(b) > 0 && b[len(b)-1] != '\n' {
		return append(append([]byte{}, b...), '\n')
	}
	return b
}

// append durably logs one transition: marshal with checksum, write one
// line, fsync. On a write or sync failure the possibly-torn tail is
// truncated back so the WAL stays clean for subsequent appends, and the
// error is returned — the caller decides whether losing the durable
// copy is fatal. Callers hold s.mu.
func (s *Store) append(w *walRecord) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.seq++
	w.Seq = s.seq
	crc, err := w.checksum()
	if err != nil {
		s.seq--
		return fmt.Errorf("store: marshal wal record: %w", err)
	}
	w.CRC = crc
	line, err := json.Marshal(w)
	if err != nil {
		s.seq--
		return fmt.Errorf("store: marshal wal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.wal.Write(line); err != nil {
		s.reg.Inc(obs.MStoreAppendErrors)
		s.repairTail()
		return fmt.Errorf("store: append wal: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		s.reg.Inc(obs.MStoreAppendErrors)
		s.repairTail()
		return fmt.Errorf("store: sync wal: %w", err)
	}
	s.walSize += int64(len(line))
	s.reg.Inc(obs.MStoreAppends)
	s.appends++
	return nil
}

// maybeCompact runs a compaction once enough appends accumulated. It
// must run only after the triggering transition is applied to the
// in-memory map — compacting from inside append would publish a
// LastSeq covering a record the snapshot does not yet contain, losing
// it on replay. Callers hold s.mu.
func (s *Store) maybeCompact() {
	if s.appends < s.opts.compactEvery() {
		return
	}
	if err := s.compactLocked(); err != nil {
		// Compaction is an optimization; the WAL alone is still a
		// complete, durable record. Journal and retry next cycle.
		s.journal.Event("store_compact_error", map[string]any{"error": err.Error()})
	}
}

// repairTail truncates the WAL back to the last known-good size after a
// failed append, so one torn write cannot poison later records. Best
// effort: a failed repair is journaled and left for Open's salvage.
func (s *Store) repairTail() {
	if err := s.fsys.Truncate(s.walPath, s.walSize); err != nil {
		s.journal.Event("store_tail_repair_error", map[string]any{"error": err.Error()})
	}
}

// Submitted durably records a newly accepted job (state queued).
func (s *Store) Submitted(rec *JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := rec.clone()
	if job.State == "" {
		job.State = "queued"
	}
	if err := s.append(&walRecord{Kind: KindSubmit, ID: job.ID, Job: job}); err != nil {
		return err
	}
	if _, ok := s.jobs[job.ID]; !ok {
		s.order = append(s.order, job.ID)
	}
	s.jobs[job.ID] = job
	s.maybeCompact()
	return nil
}

// Started durably records that a job began running at the given unix
// millisecond timestamp.
func (s *Store) Started(id string, atMS int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("store: start for unknown job %q", id)
	}
	if err := s.append(&walRecord{Kind: KindStart, ID: id, TimeMS: atMS}); err != nil {
		return err
	}
	j.State = "running"
	j.StartedMS = atMS
	s.maybeCompact()
	return nil
}

// Finished durably records a job's terminal state (done or rejected),
// result included.
func (s *Store) Finished(rec *JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := rec.clone()
	if err := s.append(&walRecord{Kind: KindFinish, ID: job.ID, Job: job}); err != nil {
		return err
	}
	if _, ok := s.jobs[job.ID]; !ok {
		s.order = append(s.order, job.ID)
	}
	s.jobs[job.ID] = job
	s.maybeCompact()
	return nil
}

// Lookup returns the stored record for a job id.
func (s *Store) Lookup(id string) (*JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// Find returns the most recent completed result for a dedup key — the
// cross-restart dedup tier: a resubmission of a solve finished in any
// earlier process generation is answered from here without re-solving.
func (s *Store) Find(key string) (*JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if j.Key == key && j.State == "done" && j.Complete {
			return j.clone(), true
		}
	}
	return nil, false
}

// Query returns every stored job with the given dedup key (solve
// fingerprint), in submission order; an empty key returns everything.
func (s *Store) Query(key string) []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*JobRecord
	for _, id := range s.order {
		j := s.jobs[id]
		if key == "" || j.Key == key {
			out = append(out, j.clone())
		}
	}
	return out
}

// Requeue returns the jobs that are queued or running in the store —
// work a crashed process acknowledged but never finished. The service
// re-queues them at startup (their enumeration checkpoints make the
// resume cheap).
func (s *Store) Requeue() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*JobRecord
	for _, id := range s.order {
		if j := s.jobs[id]; !j.terminal() {
			out = append(out, j.clone())
		}
	}
	return out
}

// Counts tallies stored jobs by state.
func (s *Store) Counts() (queued, running, done, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.State {
		case "queued":
			queued++
		case "running":
			running++
		case "done":
			done++
		case "rejected":
			rejected++
		}
	}
	return
}

// Len returns how many jobs the store retains.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Seq returns the last assigned WAL sequence number.
func (s *Store) Seq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Compact publishes an index snapshot covering every transition so far
// and truncates the WAL behind it. Runs automatically every
// CompactEvery appends; exported for tests and shutdown.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked evicts the oldest terminal jobs beyond MaxJobs, saves
// the index (atomic write-fsync-rename with generation rotation), and
// only then truncates the WAL — a crash between the two steps replays
// nothing twice because replay skips seq ≤ the published LastSeq.
func (s *Store) compactLocked() error {
	s.appends = 0
	if max := s.opts.maxJobs(); len(s.order) > max {
		kept := make([]string, 0, len(s.order))
		excess := len(s.order) - max
		for _, id := range s.order {
			if excess > 0 && s.jobs[id].terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	snap := indexSnapshot{LastSeq: s.seq, Jobs: make([]*JobRecord, 0, len(s.order))}
	for _, id := range s.order {
		snap.Jobs = append(snap.Jobs, s.jobs[id])
	}
	env, err := runctl.NewCheckpoint(indexKind, indexKind, runctl.StatusComplete, nil, snap)
	if err != nil {
		return fmt.Errorf("store: build index snapshot: %w", err)
	}
	if err := s.index.Save(env); err != nil {
		return fmt.Errorf("store: save index: %w", err)
	}
	if err := s.fsys.Truncate(s.walPath, 0); err != nil {
		// The published index already covers the WAL; a failed truncate
		// only means replay will skip those records on the next open.
		s.journal.Event("store_wal_truncate_error", map[string]any{"error": err.Error()})
	} else {
		s.walSize = 0
	}
	s.reg.Inc(obs.MStoreCompactions)
	s.journal.Event("store_compact", map[string]any{"last_seq": s.seq, "jobs": len(s.order)})
	return nil
}

// Close compacts one last time (so the next Open replays nothing) and
// closes the WAL handle. The store rejects appends afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	cerr := s.compactLocked()
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && cerr == nil {
			cerr = fmt.Errorf("store: close wal: %w", err)
		}
		s.wal = nil
	}
	return cerr
}
