package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s, rec
}

func submitN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := &JobRecord{
			ID:          fmt.Sprintf("job-%06d", i+1),
			Key:         fmt.Sprintf("bbc-%016x", i),
			Mode:        "enumerate",
			Req:         json.RawMessage(`{"mode":"enumerate"}`),
			SubmittedMS: int64(1000 + i),
		}
		if err := s.Submitted(rec); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

func finish(t *testing.T, s *Store, id, key string, complete bool) {
	t.Helper()
	if err := s.Started(id, 2000); err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	state := "done"
	err := s.Finished(&JobRecord{
		ID: id, Key: key, Mode: "enumerate", State: state,
		RunStatus: "complete", Complete: complete,
		Result: json.RawMessage(`{"checked":42,"equilibria":[]}`), FinishedMS: 3000,
	})
	if err != nil {
		t.Fatalf("finish %s: %v", id, err)
	}
}

// TestRoundTripAcrossReopen is the basic durability contract: every
// acknowledged transition survives a reopen, and the lookup surfaces
// (Lookup, Find, Query, Requeue, Counts) agree with what was written.
func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, Options{})
	if rec.IndexJobs != 0 || rec.Replayed != 0 {
		t.Fatalf("fresh open recovered state: %+v", rec)
	}
	submitN(t, s, 3)
	finish(t, s, "job-000001", fmt.Sprintf("bbc-%016x", 0), true)
	if err := s.Started("job-000002", 2500); err != nil {
		t.Fatalf("start: %v", err)
	}
	// No Close: simulate a crash by abandoning the handle (the WAL is
	// fsynced per append, so everything acknowledged is on disk).

	s2, rec2 := mustOpen(t, dir, Options{})
	if rec2.Replayed == 0 {
		t.Fatalf("reopen replayed nothing: %+v", rec2)
	}
	if rec2.Quarantined != 0 || rec2.TornBytes != 0 {
		t.Fatalf("clean WAL reported salvage: %+v", rec2)
	}
	if got := s2.Len(); got != 3 {
		t.Fatalf("recovered %d jobs, want 3", got)
	}
	j, ok := s2.Lookup("job-000001")
	if !ok || j.State != "done" || !j.Complete || j.RunStatus != "complete" {
		t.Fatalf("job-000001 = %+v, want completed done", j)
	}
	if string(j.Result) != `{"checked":42,"equilibria":[]}` {
		t.Fatalf("result not preserved byte-identically: %s", j.Result)
	}
	if hit, ok := s2.Find(fmt.Sprintf("bbc-%016x", 0)); !ok || hit.ID != "job-000001" {
		t.Fatalf("Find missed the completed job: %+v ok=%v", hit, ok)
	}
	if _, ok := s2.Find(fmt.Sprintf("bbc-%016x", 1)); ok {
		t.Fatal("Find returned an incomplete job")
	}
	req := s2.Requeue()
	if len(req) != 2 {
		t.Fatalf("requeue = %d jobs, want 2 (one running, one queued)", len(req))
	}
	if req[0].ID != "job-000002" || req[0].State != "running" || req[0].StartedMS != 2500 {
		t.Fatalf("requeue[0] = %+v, want running job-000002 started at 2500", req[0])
	}
	if req[1].ID != "job-000003" || req[1].State != "queued" {
		t.Fatalf("requeue[1] = %+v, want queued job-000003", req[1])
	}
	queued, running, done, rejected := s2.Counts()
	if queued != 1 || running != 1 || done != 1 || rejected != 0 {
		t.Fatalf("counts = %d/%d/%d/%d", queued, running, done, rejected)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCompactionCoversWAL: after a compaction the index carries the
// state and replay applies nothing; appends after the compaction replay
// on top of the snapshot.
func TestCompactionCoversWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CompactEvery: 4})
	submitN(t, s, 6) // crosses the compaction threshold at 4 appends

	s2, rec := mustOpen(t, dir, Options{CompactEvery: 4})
	if rec.IndexJobs != 4 {
		t.Fatalf("index restored %d jobs, want 4 (compacted at the threshold)", rec.IndexJobs)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d records, want the 2 post-compaction submits", rec.Replayed)
	}
	if got := s2.Len(); got != 6 {
		t.Fatalf("recovered %d jobs, want 6", got)
	}
	// Sequence numbers continue past the snapshot across generations.
	submitN(t, s2, 1) // duplicate id job-000001: upsert, not a new entry
	if got := s2.Len(); got != 6 {
		t.Fatalf("upsert grew the store to %d", got)
	}
	if s2.Seq() <= 6 {
		t.Fatalf("seq = %d, want > 6 (monotonic across reopen)", s2.Seq())
	}
}

// TestTornTailTruncated: an unterminated final line (a crashed append)
// is truncated away silently — it is an expected crash artifact, not
// corruption — and the prefix survives.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	submitN(t, s, 2)

	walPath := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"kind":"submit","id":"job-tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := mustOpen(t, dir, Options{})
	if rec.TornBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if rec.Quarantined != 0 {
		t.Fatalf("torn tail was quarantined as corruption: %+v", rec)
	}
	if got := s2.Len(); got != 2 {
		t.Fatalf("recovered %d jobs, want 2", got)
	}
	// The WAL was truncated back to the valid prefix, so appends land on
	// a clean boundary.
	if err := s2.Submitted(&JobRecord{ID: "job-000099", Key: "k", Mode: "walk"}); err != nil {
		t.Fatalf("append after salvage: %v", err)
	}
	s3, rec3 := mustOpen(t, dir, Options{})
	if rec3.TornBytes != 0 || rec3.Quarantined != 0 {
		t.Fatalf("salvage was not clean after repair: %+v", rec3)
	}
	if got := s3.Len(); got != 3 {
		t.Fatalf("recovered %d jobs, want 3", got)
	}
}

// TestCorruptRecordQuarantined: a bit-rotted complete line fails its
// checksum; it and everything after it is quarantined, the prefix is
// kept, and Open never errors.
func TestCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	submitN(t, s, 3)

	walPath := filepath.Join(dir, "wal.jsonl")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the second record's payload (keep valid JSON by
	// corrupting a digit inside the submitted_unix_ms value).
	lines[1] = strings.Replace(lines[1], `"submitted_unix_ms":1001`, `"submitted_unix_ms":9001`, 1)
	if err := os.WriteFile(walPath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, Options{})
	if rec.Quarantined == 0 {
		t.Fatalf("corruption not quarantined: %+v", rec)
	}
	if got := s2.Len(); got != 1 {
		t.Fatalf("recovered %d jobs, want the 1-record trustworthy prefix", got)
	}
	qdata, err := os.ReadFile(filepath.Join(dir, "quarantine.jsonl"))
	if err != nil || len(qdata) == 0 {
		t.Fatalf("quarantine file missing or empty: %v", err)
	}
	if !strings.Contains(string(qdata), "9001") {
		t.Fatal("quarantine does not hold the corrupt record")
	}
}

// TestCorruptIndexFallsBackToWAL: with both index generations destroyed
// the store degrades to WAL-only recovery instead of wedging.
func TestCorruptIndexFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CompactEvery: 2})
	submitN(t, s, 3) // one compaction at 2, one post-compaction record

	for _, name := range []string{"index.ckpt", "index.ckpt.prev"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	s2, rec := mustOpen(t, dir, Options{CompactEvery: 2})
	if rec.IndexJobs != 0 {
		t.Fatalf("corrupt index restored jobs: %+v", rec)
	}
	// Only the post-compaction WAL suffix survives: the compacted prefix
	// lived in the destroyed index. That is the documented degradation —
	// open succeeds, recent history may be lost, nothing is invented.
	if got := s2.Len(); got != 1 {
		t.Fatalf("recovered %d jobs from the WAL suffix, want 1", got)
	}
	if err := s2.Submitted(&JobRecord{ID: "job-000010", Key: "k", Mode: "walk"}); err != nil {
		t.Fatalf("store wedged after index loss: %v", err)
	}
}

// TestEvictionBoundsRetention: compaction evicts the oldest terminal
// jobs beyond MaxJobs but never evicts queued/running work.
func TestEvictionBoundsRetention(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{MaxJobs: 3})
	submitN(t, s, 5)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("job-%06d", i+1)
		finish(t, s, id, fmt.Sprintf("bbc-%016x", i), true)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	// The queued job survives; the oldest terminal jobs went first.
	if _, ok := s.Lookup("job-000005"); !ok {
		t.Fatal("eviction dropped a queued job")
	}
	if _, ok := s.Lookup("job-000001"); ok {
		t.Fatal("oldest terminal job survived past the bound")
	}

	s2, rec := mustOpen(t, dir, Options{MaxJobs: 3})
	if rec.IndexJobs != 3 || s2.Len() != 3 {
		t.Fatalf("eviction not durable: %+v len=%d", rec, s2.Len())
	}
}

// TestQueryByKey: the fingerprint query returns every generation of a
// solve in submission order.
func TestQueryByKey(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	key := "bbc-00000000deadbeef"
	for i, id := range []string{"job-000001", "job-000002"} {
		if err := s.Submitted(&JobRecord{ID: id, Key: key, Mode: "enumerate", SubmittedMS: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Submitted(&JobRecord{ID: "job-000003", Key: "bbc-other", Mode: "walk"}); err != nil {
		t.Fatal(err)
	}
	got := s.Query(key)
	if len(got) != 2 || got[0].ID != "job-000001" || got[1].ID != "job-000002" {
		t.Fatalf("query = %+v, want both generations in order", got)
	}
	if all := s.Query(""); len(all) != 3 {
		t.Fatalf("empty-key query = %d jobs, want all 3", len(all))
	}
}
