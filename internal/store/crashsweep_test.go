package store

// The store's crash-consistency property sweep, following the
// runctl TestCrashSweep pattern: a fixed workload of job-state
// transitions runs through a fault-injecting filesystem, and for EVERY
// filesystem operation the workload performs, a subtest crashes the
// store at exactly that operation (in every applicable failure mode)
// and asserts the recovery invariants:
//
//  1. Open never wedges: reopening the crashed directory on a clean
//     filesystem always succeeds — corrupt state is quarantined, torn
//     tails are truncated, a lost index degrades to WAL-only replay.
//  2. Old-or-new durability: the recovered jobs are the state after
//     every acknowledged transition (the append returned nil), or that
//     plus the one in-flight transition whose append errored after its
//     bytes reached the file — an errored append is indeterminate,
//     exactly like a timed-out database commit. The one exception is a
//     lying fsync (dropsync), which may lose the unsynced tail; there
//     each recovered job must still match some prefix of its own
//     acknowledged history — crash recovery may lose recent
//     transitions, it must never invent or tear state.
//  3. No spurious quarantine: a crash alone (non-dropsync) never sends
//     records to quarantine — torn tails are expected artifacts, not
//     corruption.

import (
	"fmt"
	"testing"

	"bbc/internal/faultfs"
)

// sweepCompactEvery is small enough that the workload crosses several
// compaction boundaries, putting the index save + WAL truncate sequence
// inside the swept operation trace.
const sweepCompactEvery = 4

// transition is one workload step.
type transition struct {
	kind string
	id   string
	key  string
	// complete marks finish transitions that carry a complete result.
	complete bool
}

// sweepTransitions is the fixed workload: four jobs at different
// lifecycle depths, 9 WAL appends, two automatic compactions plus the
// final one in Close.
var sweepTransitions = []transition{
	{kind: KindSubmit, id: "job-000001", key: "bbc-k1"},
	{kind: KindSubmit, id: "job-000002", key: "bbc-k2"},
	{kind: KindSubmit, id: "job-000003", key: "bbc-k3"},
	{kind: KindSubmit, id: "job-000004", key: "bbc-k4"},
	{kind: KindStart, id: "job-000001", key: "bbc-k1"},
	{kind: KindFinish, id: "job-000001", key: "bbc-k1", complete: true},
	{kind: KindStart, id: "job-000002", key: "bbc-k2"},
	{kind: KindFinish, id: "job-000002", key: "bbc-k2", complete: false},
	{kind: KindStart, id: "job-000003", key: "bbc-k3"},
}

// jobState is the model's view of one job for recovery comparison.
type jobState struct {
	State    string
	Complete bool
}

// model applies the first k transitions and returns the expected
// per-job state.
func model(k int) map[string]jobState {
	out := make(map[string]jobState)
	for _, tr := range sweepTransitions[:k] {
		switch tr.kind {
		case KindSubmit:
			out[tr.id] = jobState{State: "queued"}
		case KindStart:
			out[tr.id] = jobState{State: "running"}
		case KindFinish:
			out[tr.id] = jobState{State: "done", Complete: tr.complete}
		}
	}
	return out
}

// runWorkload drives the transitions through a store on fsys, returning
// how many were acknowledged (a contiguous prefix: with CrashOnFault,
// every operation after the fault fails) and how many were attempted —
// attempted exceeds acked by one when a transition's append errored
// mid-flight, in which case its durability is indeterminate. Open or
// append failures are absorbed the way the service absorbs them — the
// store must not wedge the caller.
func runWorkload(dir string, fsys faultfs.FS) (acked, attempted int) {
	st, _, err := Open(dir, Options{FS: fsys, CompactEvery: sweepCompactEvery})
	if err != nil {
		return 0, 0
	}
	for _, tr := range sweepTransitions {
		var err error
		switch tr.kind {
		case KindSubmit:
			err = st.Submitted(&JobRecord{ID: tr.id, Key: tr.key, Mode: "enumerate", SubmittedMS: 1000})
		case KindStart:
			err = st.Started(tr.id, 2000)
		case KindFinish:
			err = st.Finished(&JobRecord{
				ID: tr.id, Key: tr.key, Mode: "enumerate", State: "done",
				RunStatus: "complete", Complete: tr.complete, FinishedMS: 3000,
			})
		}
		if err != nil {
			return acked, acked + 1
		}
		acked++
	}
	st.Close() //nolint:errcheck // post-crash close errors are expected
	return acked, acked
}

// sweepModes maps each operation class to the failure modes that can
// physically happen to it (same table as the runctl sweep).
var sweepModes = map[faultfs.Op][]faultfs.Mode{
	faultfs.OpCreate:     {faultfs.ModeFail},
	faultfs.OpCreateTemp: {faultfs.ModeFail, faultfs.ModeENOSPC},
	faultfs.OpOpenAppend: {faultfs.ModeFail},
	faultfs.OpRead:       {faultfs.ModeFail, faultfs.ModeShortRead},
	faultfs.OpWrite:      {faultfs.ModeFail, faultfs.ModeTorn, faultfs.ModeENOSPC},
	faultfs.OpSync:       {faultfs.ModeFail, faultfs.ModeDropSync},
	faultfs.OpClose:      {faultfs.ModeFail},
	faultfs.OpRename:     {faultfs.ModeFail},
	faultfs.OpRemove:     {faultfs.ModeFail},
	faultfs.OpStat:       {faultfs.ModeFail},
	faultfs.OpTruncate:   {faultfs.ModeFail},
}

// TestStoreCrashSweep is the property test: one crash per failpoint,
// every failpoint of the workload, every applicable failure mode.
func TestStoreCrashSweep(t *testing.T) {
	// Counting pass: enumerate every filesystem touch of the fault-free
	// workload. Faulted runs replay this exact sequence up to the fault.
	counter := faultfs.NewInjector(faultfs.OS{})
	if acked, _ := runWorkload(t.TempDir(), counter); acked != len(sweepTransitions) {
		t.Fatalf("counting pass acknowledged %d of %d transitions", acked, len(sweepTransitions))
	}
	counts := counter.Counts()
	if counts[faultfs.OpWrite] == 0 || counts[faultfs.OpSync] == 0 || counts[faultfs.OpCreateTemp] == 0 {
		t.Fatalf("counting pass missed core persistence operations: %v", counts)
	}

	for op, modes := range sweepModes {
		for nth := 1; nth <= counts[op]; nth++ {
			for _, mode := range modes {
				f := faultfs.Fault{Op: op, Nth: nth, Mode: mode, TornBytes: 7}
				t.Run(f.String(), func(t *testing.T) {
					t.Parallel()
					sweepOne(t, f)
				})
			}
		}
	}
}

// sweepOne crashes one workload at fault f and asserts the recovery
// invariants.
func sweepOne(t *testing.T, f faultfs.Fault) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, f)
	inj.CrashOnFault = true
	acked, attempted := runWorkload(dir, inj)
	if inj.Fired() == 0 {
		t.Fatalf("fault %v never fired; the failpoint enumeration is stale", f)
	}
	inj.Crash()

	// Invariant 1: reopen on a clean filesystem always succeeds.
	st, rec, err := Open(dir, Options{CompactEvery: sweepCompactEvery})
	if err != nil {
		t.Fatalf("recovery open failed after %v (acked %d): %v", f, acked, err)
	}
	defer st.Close() //nolint:errcheck

	got := make(map[string]jobState)
	for _, j := range st.Query("") {
		got[j.ID] = jobState{State: j.State, Complete: j.Complete}
	}

	if f.Mode == faultfs.ModeDropSync {
		// A lying fsync may lose the unsynced tail — including, when the
		// dropped sync hit the index checkpoint, transitions a compaction
		// had already truncated out of the WAL. Per-job prefix consistency
		// is the contract: every recovered job matches some prefix of its
		// own attempted history; nothing is invented or torn.
		final := model(attempted)
		for id, gs := range got {
			states := historyOf(id, attempted)
			okState := false
			for _, hs := range states {
				okState = okState || hs == gs
			}
			if !okState {
				t.Errorf("job %s recovered as %+v, which is no prefix state of its history %v", id, gs, states)
			}
		}
		for id := range got {
			if _, ok := final[id]; !ok {
				t.Errorf("job %s recovered but never attempted", id)
			}
		}
		return
	}

	// Invariant 2 (all other modes): old-or-new. Everything acknowledged
	// is durable; the one in-flight transition may or may not be,
	// depending on whether its bytes reached the file before the crash.
	if !statesEqual(got, model(acked)) && !statesEqual(got, model(attempted)) {
		t.Fatalf("recovered state matches neither acked=%d nor attempted=%d (recovery %+v)\ngot:  %v\nold:  %v\nnew:  %v",
			acked, attempted, rec, got, model(acked), model(attempted))
	}

	// Invariant 3: a crash alone never quarantines — torn tails are
	// expected artifacts, corruption is not something a crash produces.
	if rec.Quarantined != 0 {
		t.Errorf("crash recovery quarantined %d records (fault %v): %+v", rec.Quarantined, f, rec)
	}
}

// statesEqual reports whether two recovered-state maps are identical.
func statesEqual(a, b map[string]jobState) bool {
	if len(a) != len(b) {
		return false
	}
	for id, s := range a {
		if bs, ok := b[id]; !ok || bs != s {
			return false
		}
	}
	return true
}

// historyOf returns every state job id passes through across the first
// n transitions (its per-job prefix states), oldest first.
func historyOf(id string, n int) []jobState {
	var out []jobState
	for k := 1; k <= n; k++ {
		m := model(k)
		if s, ok := m[id]; ok {
			if len(out) == 0 || out[len(out)-1] != s {
				out = append(out, s)
			}
		}
	}
	return out
}

// TestStoreSweepFaultLabels pins the subtest naming so CI failures name
// the exact failpoint.
func TestStoreSweepFaultLabels(t *testing.T) {
	f := faultfs.Fault{Op: faultfs.OpTruncate, Nth: 2, Mode: faultfs.ModeFail}
	if got := f.String(); got != "fail@truncate#2" {
		t.Fatalf("fault label = %q", got)
	}
	if got := fmt.Sprintf("%v", faultfs.OpOpenAppend); got != "openappend" {
		t.Fatalf("op label = %q", got)
	}
}
