package exper

import (
	"bbc/internal/analysis"
	"bbc/internal/core"
	"bbc/internal/group"
)

// E23 quantifies Section 4.2's design trade-off: the offset overlays a
// P2P designer would actually deploy (generators {1, s, s², ...} with
// s = ⌈n^(1/k)⌉, giving diameter O(k·n^(1/k))) are unstable by Theorem 5 —
// but by how much? We measure the "instability pressure": the largest
// cost improvement any node can realize by rewiring, absolutely and
// relative to its cost. Pressure grows with n, so churn incentives get
// worse, not better, as the designed overlay scales.
func E23(cfg Config) *Report {
	r := &Report{ID: "E23", Title: "Extension: instability pressure on designed overlays (§4.2)", Pass: true}
	sizes := []int{16, 25, 36, 49}
	if !cfg.Quick {
		sizes = append(sizes, 64, 81)
	}
	const k = 2
	prevPressure := int64(-1)
	grew := 0
	for _, n := range sizes {
		gens := group.GeneratorsForDiameter(n, k)
		ab := group.MustCyclic(n)
		spec, p, err := analysis.CayleyGame(ab, gens)
		if err != nil {
			r.Pass = false
			r.addFinding("n=%d: %v", n, err)
			continue
		}
		g := p.Realize(spec)
		dev, err := core.NodeDeviation(spec, g, p, 0, core.SumDistances, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("n=%d: %v", n, err)
			continue
		}
		diam, _ := g.Diameter(true)
		if dev == nil {
			r.addRow("n=%-3d k=%d gens=%v: diameter=%-2d STABLE (below the Theorem 5 threshold)", n, k, gens, diam)
			continue
		}
		rel := float64(dev.Improvement()) / float64(dev.OldCost)
		r.addRow("n=%-3d k=%d gens=%v: diameter=%-2d deviation gain=%d (%.2f%% of cost)",
			n, k, gens, diam, dev.Improvement(), 100*rel)
		if dev.Improvement() > prevPressure {
			grew++
		}
		prevPressure = dev.Improvement()
	}
	if grew < 2 {
		r.Pass = false
		r.addFinding("expected instability pressure to grow with n")
	} else {
		r.addFinding("the designed overlay's churn incentive grows with n: regularity costs more stability at scale, sharpening the paper's §4.2 message")
	}
	return r
}
