package exper

import (
	"math/rand"
	"testing"
)

// draws returns the first n Int63 values of a generator, the signature
// the collision tests compare.
func draws(r *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeededRandDeterministic pins the contract resume and golden
// reproduction depend on: the same (experiment, trial) pair always
// yields the same stream.
func TestSeededRandDeterministic(t *testing.T) {
	for _, id := range []string{"E17", "E19", "E21"} {
		for trial := int64(0); trial < 4; trial++ {
			a := draws(newSeededRand(id, trial), 16)
			b := draws(newSeededRand(id, trial), 16)
			if !equal(a, b) {
				t.Fatalf("%s trial %d: stream is not deterministic", id, trial)
			}
		}
	}
}

// TestSeededRandStreamsAreNamespaced is the regression test for the
// seed-collision bug: before namespacing, E17 and E19 both seeded trial
// RNGs with the raw indices 0..trials-1, so "independent" trials of
// different experiments consumed identical random streams (and collided
// with dynamics.Ensemble's Seed+trial streams for low seeds). Distinct
// experiments — and distinct trials within one experiment — must now
// produce distinct streams, and none may reproduce the raw
// rand.NewSource(trial) stream the old code used.
func TestSeededRandStreamsAreNamespaced(t *testing.T) {
	const n = 16
	for trial := int64(0); trial < 20; trial++ {
		e17 := draws(newSeededRand("E17", trial), n)
		e19 := draws(newSeededRand("E19", trial), n)
		e21 := draws(newSeededRand("E21", trial), n)
		raw := draws(rand.New(rand.NewSource(trial)), n)
		if equal(e17, e19) || equal(e17, e21) || equal(e19, e21) {
			t.Fatalf("trial %d: two experiments share an RNG stream", trial)
		}
		for id, s := range map[string][]int64{"E17": e17, "E19": e19, "E21": e21} {
			if equal(s, raw) {
				t.Fatalf("%s trial %d: stream equals the raw rand.NewSource stream", id, trial)
			}
		}
	}
	// Trials within one experiment stay mutually distinct.
	seen := map[int64]int64{}
	for trial := int64(0); trial < 100; trial++ {
		first := newSeededRand("E17", trial).Int63()
		if prev, dup := seen[first]; dup {
			t.Fatalf("trials %d and %d of E17 draw the same first value", prev, trial)
		}
		seen[first] = trial
	}
}

// TestSeedForDisjointFromEnsembleSeeds checks the derived seeds
// themselves cannot collide with the small consecutive Seed+trial blocks
// dynamics.Ensemble uses (experiment configs pick seeds in 0..10000).
func TestSeedForDisjointFromEnsembleSeeds(t *testing.T) {
	for _, id := range []string{"E17", "E19", "E21"} {
		for trial := int64(0); trial < 100; trial++ {
			s := SeedFor(id, trial)
			if s >= 0 && s <= 20000 {
				t.Fatalf("SeedFor(%s, %d) = %d lands in the ensemble seed block", id, trial, s)
			}
		}
	}
}
