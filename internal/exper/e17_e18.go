package exper

import (
	"bbc/internal/brspace"
	"bbc/internal/construct"
	"bbc/internal/core"
)

// E17 probes the paper's open conjecture (footnote 2): pure Nash
// equilibria exist in all BBC games where only the budgets are
// non-uniform. We exhaustively enumerate equilibria in random small games
// with uniform weights/costs/lengths and random budgets, hunting for a
// counterexample.
func E17(cfg Config) *Report {
	r := &Report{ID: "E17", Title: "Open conjecture (footnote 2): budget-only non-uniform games", Pass: true}
	trials := 200
	maxN := 5
	if !cfg.Quick {
		trials = 400
		maxN = 6
	}
	checked := 0
	withNE := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		rng := newSeededRand("E17", seed)
		n := 3 + rng.Intn(maxN-2)
		d := core.NewDense(n)
		for u := 0; u < n; u++ {
			d.Budgets[u] = int64(1 + rng.Intn(n-1))
		}
		if err := d.Seal(); err != nil {
			r.Pass = false
			r.addFinding("seal: %v", err)
			return r
		}
		ss, err := core.FullSpace(d, 0)
		if err != nil {
			r.Pass = false
			r.addFinding("space: %v", err)
			return r
		}
		if ss.Size() > 400_000 {
			continue
		}
		res, err := core.EnumeratePureNEOpts(d, core.SumDistances, ss,
			core.EnumConfig{Ctx: cfg.Ctx, MaxEquilibria: 1})
		if err != nil {
			r.Pass = false
			r.addFinding("enumerate: %v", err)
			return r
		}
		if !res.Status.Complete() && len(res.Equilibria) == 0 {
			r.Pass = false
			r.addFinding("scan interrupted (%s) after %d games", res.Status, checked)
			return r
		}
		checked++
		if len(res.Equilibria) > 0 {
			withNE++
		} else {
			r.Pass = false
			r.addRow("COUNTEREXAMPLE: n=%d budgets=%v has no pure NE", n, d.Budgets)
			r.addFinding("the conjecture is false! seed %d", seed)
			return r
		}
	}
	r.addRow("checked %d random budget-only non-uniform games (n=3..%d): %d/%d had a pure NE",
		checked, maxN, withNE, checked)
	r.addFinding("no counterexample found — consistent with the paper's conjecture that budget-only non-uniform games always have pure equilibria")
	return r
}

// E18 extends Section 4.3 with full best-response configuration-graph
// analysis: which uniform games are weakly acyclic (every state has some
// best-response path to an equilibrium), and do inescapable best-response
// cycles (sink recurrent classes) exist? The no-NE gadget's reachable
// space is one giant recurrent class — a strictly stronger fact than the
// paper's escapable Figure 4 loop.
func E18(cfg Config) *Report {
	r := &Report{ID: "E18", Title: "Extension: best-response graph structure & weak acyclicity", Pass: true}
	games := []struct{ n, k int }{{3, 1}, {4, 1}, {4, 2}, {5, 1}}
	if !cfg.Quick {
		games = append(games, struct{ n, k int }{5, 2}, struct{ n, k int }{6, 1})
	}
	for _, tc := range games {
		spec := core.MustUniform(tc.n, tc.k)
		starts, err := brspace.AllProfiles(spec, 2_000_000)
		if err != nil {
			r.addRow("(n=%d,k=%d): state space too large for exhaustive analysis", tc.n, tc.k)
			continue
		}
		e := &brspace.Explorer{Spec: spec, Agg: core.SumDistances, MaxStates: 2_000_000}
		space, err := e.Explore(starts)
		if err != nil {
			r.Pass = false
			r.addFinding("(n=%d,k=%d): %v", tc.n, tc.k, err)
			continue
		}
		a := space.Analyze()
		r.addRow("(n=%d,k=%d): %d states, %d equilibria, %d/%d reach an equilibrium, %d recurrent-cycle states",
			tc.n, tc.k, a.States, a.Equilibria, a.ReachEquilibrium, a.States, a.RecurrentCycleStates)
		if a.ReachEquilibrium != a.States {
			r.addFinding("(n=%d,k=%d) is NOT weakly acyclic: %d states cannot reach any equilibrium",
				tc.n, tc.k, a.States-a.ReachEquilibrium)
		}
	}
	// The gadget: an equilibrium-free reachable space.
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	e := &brspace.Explorer{Spec: d, Agg: core.SumDistances, MaxStates: 5000}
	space, err := e.Explore([]core.Profile{construct.IntendedGadgetProfile(true, true)})
	if err != nil {
		r.Pass = false
		r.addFinding("gadget: %v", err)
		return r
	}
	a := space.Analyze()
	r.addRow("Theorem-1 gadget from (L,L): %d reachable states, %d equilibria, %d recurrent-cycle states (truncated=%v)",
		a.States, a.Equilibria, a.RecurrentCycleStates, a.Truncated)
	if a.Equilibria != 0 || a.ReachEquilibrium != 0 {
		r.Pass = false
		r.addFinding("gadget space unexpectedly contains/reaches equilibria")
	} else if !a.Truncated && a.RecurrentClasses > 0 {
		r.addFinding("the gadget's reachable best-response space is equilibrium-free with an inescapable recurrent class — stronger than an escapable loop")
	}
	return r
}
