package exper

import (
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/fractional"
	"bbc/internal/sat"
)

// E2 examines the Theorem 2 / Figure 2 reduction from 3SAT. The forward
// mapping (formula → game, assignment → profile) is reproduced exactly;
// machine-checking the intended stable profile then reveals two gaps in
// the transcribed construction (the figure's details did not survive into
// the text source):
//
//  1. with shared variables, a clause node strictly prefers linking the
//     hub S — the hub transitively reaches other clauses' satisfied truth
//     nodes, contradicting the proof's "the three-hop path ... is the
//     shortest possible" step;
//  2. once both gadget centers resolve to S, each center's weight-(2m−1)
//     target (the other center) is orphaned, so a direct length-L link to
//     it strictly improves (M = nL ≫ L).
//
// Both gaps are certified here and pinned by regression tests.
func E2(cfg Config) *Report {
	r := &Report{ID: "E2", Title: "Theorem 2 / Figure 2: 3SAT reduction (transcription analysis)", Pass: true}

	// Forward mapping on a satisfiable formula.
	f := sat.MustNew(3, sat.Clause{1, 2, 3}, sat.Clause{-1, 2, 3})
	a, ok := f.Solve()
	if !ok {
		r.Pass = false
		r.addFinding("internal: formula should be satisfiable")
		return r
	}
	red, err := construct.FromCNF(f, construct.DefaultGadgetWeights())
	if err != nil {
		r.Pass = false
		r.addFinding("build error: %v", err)
		return r
	}
	r.addRow("reduction: %d vars, %d clauses -> %d-node game (budgets 0/1/m, lengths 1/L, M=nL+1)",
		f.NumVars, len(f.Clauses), red.Spec.N())
	p, err := red.AssignmentProfile(a)
	if err != nil {
		r.Pass = false
		r.addFinding("assignment profile error: %v", err)
		return r
	}
	back := red.DecodeAssignment(p)
	if !f.Satisfies(back) {
		r.Pass = false
		r.addFinding("assignment round trip failed")
		return r
	}
	r.addRow("assignment profile round-trips through DecodeAssignment")

	// Gap 1: clause-node hub shortcut on shared variables.
	g := p.Realize(red.Spec)
	gap1 := false
	for j := range f.Clauses {
		dev, err := core.NodeDeviation(red.Spec, g, p, red.ClauseNode(j), core.SumDistances, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("deviation check error: %v", err)
			return r
		}
		if dev != nil && dev.Strategy.Contains(red.S) {
			gap1 = true
			r.addRow("gap 1 certified: clause K_%d deviates to S, cost %d -> %d", j, dev.OldCost, dev.NewCost)
		}
	}
	if !gap1 {
		r.Pass = false
		r.addFinding("expected the shared-variable hub shortcut; construction may have been repaired")
	}

	// Gap 2: center orphan bait on a variable-disjoint formula.
	fd := sat.MustNew(3, sat.Clause{1, -2, 3})
	ad, _ := fd.Solve()
	redD, err := construct.FromCNF(fd, construct.DefaultGadgetWeights())
	if err != nil {
		r.Pass = false
		r.addFinding("build error: %v", err)
		return r
	}
	pd, err := redD.AssignmentProfile(ad)
	if err != nil {
		r.Pass = false
		r.addFinding("assignment profile error: %v", err)
		return r
	}
	dev, err := core.FindDeviation(redD.Spec, pd, core.SumDistances, core.Options{EnumLimit: 5_000_000})
	if err != nil {
		r.Pass = false
		r.addFinding("deviation scan error: %v", err)
		return r
	}
	if dev != nil && (dev.Node == redD.GadgetBase || dev.Node == redD.GadgetBase+5) {
		r.addRow("gap 2 certified: gadget center (node %d) deviates, cost %d -> %d",
			dev.Node, dev.OldCost, dev.NewCost)
	} else if dev != nil {
		r.addRow("intended profile unstable (node %d deviates)", dev.Node)
	} else {
		r.Pass = false
		r.addFinding("expected the center orphan-bait deviation; construction may have been repaired")
	}

	r.addFinding("the literal transcription of the reduction does not satisfy the paper's stability claims; the lost figure likely carried additional structure (see DESIGN.md)")
	r.addFinding("the forward mapping, node layout, lengths and budgets match the text exactly and are regression-tested")
	return r
}

// E3 reproduces Theorem 3 (fractional BBC games always have a pure Nash
// equilibrium) to the extent it is computationally checkable: integral
// equilibria of uniform games lift to fractional ε-equilibria, while
// δ-transfer improvement dynamics on the integral no-NE gadget cycle
// forever at every granularity — the fractional equilibrium exists by the
// quasi-concavity fixed-point argument but is a saddle that improvement
// dynamics orbit, exactly as in matching pennies.
func E3(cfg Config) *Report {
	r := &Report{ID: "E3", Title: "Theorem 3: fractional BBC games", Pass: true}

	// Lifting: the directed cycle stays an ε-equilibrium fractionally.
	spec := core.MustUniform(6, 1)
	game := &fractional.Game{Spec: spec}
	ringP := core.NewEmptyProfile(6)
	for u := 0; u < 6; u++ {
		ringP[u] = core.Strategy{(u + 1) % 6}
	}
	fp := fractional.FromIntegral(spec, ringP)
	for _, delta := range []float64{0.5, 0.25, 0.1} {
		stable := game.EpsilonStable(fp, delta, 1e-6)
		r.addRow("(6,1) ring lifted: δ=%.2f-transfer stable = %v", delta, stable)
		if !stable {
			r.Pass = false
		}
	}

	// The no-NE gadget: δ-transfer dynamics keep cycling.
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	fg := &fractional.Game{Spec: d}
	start := fractional.FromIntegral(d, construct.IntendedGadgetProfile(true, true))
	rounds := 20
	if cfg.Quick {
		rounds = 6
	}
	_, settled := fg.ImprovementDynamics(start, fractional.Options{Delta: 0.25, MaxRounds: rounds})
	r.addRow("gadget: δ=0.25 improvement dynamics settled within %d rounds = %v", rounds, settled)
	if settled {
		r.Pass = false
		r.addFinding("unexpected settling; the gadget's fractional equilibrium should be a saddle")
	} else {
		r.addFinding("improvement dynamics cycle on the gadget; the Theorem 3 equilibrium exists by the fixed-point argument but is not reachable by myopic transfers (matching-pennies saddle)")
	}
	return r
}
