package exper

import (
	"strings"
	"testing"
)

// TestAllQuickPass runs the full experiment suite in quick mode; every
// experiment must pass its reproduction criteria.
func TestAllQuickPass(t *testing.T) {
	reports := All(Config{Quick: true})
	if len(reports) != 23 {
		t.Fatalf("expected 23 experiments, got %d", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if !r.Pass {
			t.Errorf("%s failed:\n%s", r.ID, r)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s produced no measurement rows", r.ID)
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "EX", Title: "test", Pass: true}
	r.addRow("row %d", 1)
	r.addFinding("finding")
	s := r.String()
	for _, want := range []string{"EX", "PASS", "row 1", "finding"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	r.Pass = false
	if !strings.Contains(r.String(), "FAIL") {
		t.Fatal("failed report should render FAIL")
	}
}

func TestSlowExperimentsPass(t *testing.T) {
	// The heavier variants of selected experiments (still bounded; the
	// multi-minute exhaustive gadget scan stays in the construct tests).
	if testing.Short() {
		t.Skip("slow experiments skipped in -short")
	}
	for _, run := range []func(Config) *Report{E8, E10, E11, E15, E16, E17, E18, E19, E20, E21, E22, E23} {
		r := run(Config{Quick: false})
		if !r.Pass {
			t.Errorf("%s failed in full mode:\n%s", r.ID, r)
		}
	}
}
