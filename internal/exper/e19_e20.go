package exper

import (
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

// E19 is the solver ablation DESIGN.md calls out: how do best-response
// walks behave when the exact oracle is replaced by the greedy(+swap)
// heuristic? Heuristic walks are not guaranteed to stop only at true
// equilibria, so each "converged" endpoint is re-audited with the exact
// checker; the experiment reports convergence, loop frequency and audit
// results side by side.
func E19(cfg Config) *Report {
	r := &Report{ID: "E19", Title: "Ablation: exact vs greedy-swap best responses in dynamics", Pass: true}
	trials := 20
	if cfg.Quick {
		trials = 10
	}
	for _, tc := range []struct {
		n, k   int
		method core.Method
		name   string
	}{
		{6, 2, core.Exact, "exact"},
		{6, 2, core.GreedySwap, "greedy-swap"},
		{8, 2, core.Exact, "exact"},
		{8, 2, core.GreedySwap, "greedy-swap"},
	} {
		spec := core.MustUniform(tc.n, tc.k)
		stats, err := dynamics.RunEnsemble(spec, dynamics.EnsembleConfig{
			N: tc.n, K: tc.k, Trials: trials, Seed: 4000, Ctx: cfg.Ctx,
			Walk: dynamics.Options{MaxSteps: 4000, DetectLoops: true,
				BR: core.Options{Method: tc.method}},
		})
		if err != nil {
			r.Pass = false
			r.addFinding("(%d,%d) %s: %v", tc.n, tc.k, tc.name, err)
			continue
		}
		r.addRow("(n=%d,k=%d) %-11s: converged=%d looped=%d exhausted=%d",
			tc.n, tc.k, tc.name, stats.Converged, stats.Looped, stats.Exhausted)
	}
	// Audit: greedy-swap endpoints that "converged" — are they true
	// equilibria? (Greedy stability is only an upper-bound check.)
	spec := core.MustUniform(7, 2)
	trueEq, falseEq := 0, 0
	for seed := int64(0); seed < int64(trials); seed++ {
		start := dynamics.RandomStart(newSeededRand("E19", seed), 7, 2)
		res, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(7), core.SumDistances,
			dynamics.Options{MaxSteps: 3000, BR: core.Options{Method: core.GreedySwap}})
		if err != nil {
			r.Pass = false
			r.addFinding("audit run: %v", err)
			return r
		}
		if !res.Converged {
			continue
		}
		stable, err := core.IsEquilibrium(spec, res.Final, core.SumDistances)
		if err != nil {
			r.Pass = false
			r.addFinding("audit check: %v", err)
			return r
		}
		if stable {
			trueEq++
		} else {
			falseEq++
		}
	}
	r.addRow("(n=7,k=2) greedy-swap audit: %d converged endpoints are true equilibria, %d are heuristic rest points only",
		trueEq, falseEq)
	if falseEq > 0 {
		r.addFinding("greedy-swap walks can stall at non-equilibria — exact verification (this repo's default) is required for stability claims")
	} else {
		r.addFinding("in this sample every greedy-swap rest point was a true equilibrium; the oracles differ mainly in speed (see BenchmarkBestResponse)")
	}
	return r
}

// E20 probes the robustness of the Theorem 1 gadget across its weight
// space: the matching-pennies cycle must persist for every weight vector
// satisfying the design inequalities (ζ>ξ, α1>β, α1+α2>β+γ, α1>... see
// construct.GadgetWeights), and breaking the harbor-dominance inequality
// α1 > β must hand the bottoms a stable retreat — demonstrating the
// inequalities are tight in spirit, as the paper's proof sketches.
func E20(cfg Config) *Report {
	r := &Report{ID: "E20", Title: "Extension: gadget weight-space robustness", Pass: true}
	good := []construct.GadgetWeights{
		{Zeta: 2, Xi: 1, AlphaHarbor: 2, AlphaTerminal: 3, Beta: 1, Gamma: 2},
		{Zeta: 3, Xi: 1, AlphaHarbor: 2, AlphaTerminal: 4, Beta: 1, Gamma: 2},
		{Zeta: 2, Xi: 1, AlphaHarbor: 3, AlphaTerminal: 3, Beta: 2, Gamma: 3},
	}
	if !cfg.Quick {
		good = append(good,
			construct.GadgetWeights{Zeta: 4, Xi: 2, AlphaHarbor: 2, AlphaTerminal: 3, Beta: 1, Gamma: 2},
			construct.GadgetWeights{Zeta: 2, Xi: 1, AlphaHarbor: 4, AlphaTerminal: 6, Beta: 2, Gamma: 4},
		)
	}
	for _, w := range good {
		d := construct.MatchingPennies(w)
		cycleIntact := true
		for _, st := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
			p := construct.IntendedGadgetProfile(st[0], st[1])
			dev, err := core.FindDeviation(d, p, core.SumDistances, core.Options{})
			if err != nil {
				r.Pass = false
				r.addFinding("%+v: %v", w, err)
				cycleIntact = false
				break
			}
			if dev == nil || (dev.Node != 0 && dev.Node != 5) {
				cycleIntact = false
			}
		}
		r.addRow("weights %+v: matching-pennies cycle intact = %v", w, cycleIntact)
		if !cycleIntact {
			r.Pass = false
			r.addFinding("cycle broken within the inequality region at %+v", w)
		}
	}
	// Violate α1 > β: bottoms prefer their center unconditionally and the
	// game gains equilibria (detected quickly by the pinned enumerator).
	bad := construct.GadgetWeights{Zeta: 2, Xi: 1, AlphaHarbor: 1, AlphaTerminal: 1, Beta: 3, Gamma: 2}
	d := construct.MatchingPennies(bad)
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		r.Pass = false
		r.addFinding("pinning: %v", err)
		return r
	}
	res, err := core.EnumeratePureNEOpts(d, core.SumDistances, ss,
		core.EnumConfig{Ctx: cfg.Ctx, MaxEquilibria: 1})
	if err != nil {
		r.Pass = false
		r.addFinding("enumeration: %v", err)
		return r
	}
	r.addRow("violating α1>β (%+v): first equilibrium after %d profiles", bad, res.Checked)
	if len(res.Equilibria) == 0 {
		r.Pass = false
		r.addFinding("expected equilibria to appear once the harbor-dominance inequality is violated")
	} else {
		r.addFinding("the inequality region is meaningful: inside it the cycle persists, outside it equilibria appear")
	}
	return r
}
