package exper

import (
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

// E1 reproduces Theorem 1 / Figure 1: existence of a non-uniform BBC game
// (uniform costs, lengths and budgets; non-uniform preferences) with no
// pure Nash equilibrium. The witness is the 14-node matching-pennies
// gadget; the quick mode replays the four-state best-response cycle, the
// full mode additionally enumerates the entire (soundly pinned) strategy
// space and confirms zero equilibria.
func E1(cfg Config) *Report {
	r := &Report{ID: "E1", Title: "Theorem 1 / Figure 1: no-pure-NE non-uniform game", Pass: true}
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	r.addRow("gadget: n=%d, uniform budget 1, unit lengths, non-uniform preferences", d.N())

	// The intended four states each admit a strictly improving center move.
	states := []struct {
		c0, c1 bool
		name   string
	}{
		{true, true, "(L,L)"}, {true, false, "(L,R)"}, {false, true, "(R,L)"}, {false, false, "(R,R)"},
	}
	labels := construct.GadgetLabels()
	for _, st := range states {
		p := construct.IntendedGadgetProfile(st.c0, st.c1)
		dev, err := core.FindDeviation(d, p, core.SumDistances, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("error: %v", err)
			return r
		}
		if dev == nil {
			r.Pass = false
			r.addFinding("state %s unexpectedly stable", st.name)
			continue
		}
		r.addRow("state %s: deviator %s, cost %d -> %d", st.name, labels[dev.Node], dev.OldCost, dev.NewCost)
	}

	// A round-robin walk on the gadget must loop, never converge.
	res, err := dynamics.Run(d, construct.IntendedGadgetProfile(true, true),
		dynamics.NewRoundRobin(d.N()), core.SumDistances,
		dynamics.Options{MaxSteps: 30 * d.N(), DetectLoops: true})
	if err != nil {
		r.Pass = false
		r.addFinding("dynamics error: %v", err)
		return r
	}
	if res.Loop == nil || res.Converged {
		r.Pass = false
		r.addFinding("expected a certified best-response loop on the gadget")
	} else {
		r.addRow("round-robin walk: certified loop of %d moves after %d steps", len(res.Loop.Moves), res.Steps)
	}

	if cfg.Quick {
		r.addFinding("quick mode: exhaustive no-NE scan skipped (full scan: 7,529,536 profiles, 0 equilibria; regression-tested)")
		return r
	}
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		r.Pass = false
		r.addFinding("pinning error: %v", err)
		return r
	}
	ne, err := core.EnumeratePureNEParallelOpts(d, core.SumDistances, ss,
		core.EnumConfig{Ctx: cfg.Ctx, MaxEquilibria: 1})
	if err != nil {
		r.Pass = false
		r.addFinding("enumeration error: %v", err)
		return r
	}
	if !ne.Status.Complete() && len(ne.Equilibria) == 0 {
		r.Pass = false
		r.addFinding("scan interrupted (%s) after %d profiles; rerun or resume to certify", ne.Status, ne.Checked)
		return r
	}
	r.addRow("exhaustive scan: %d profiles checked, %d equilibria", ne.Checked, len(ne.Equilibria))
	if len(ne.Equilibria) != 0 || !ne.Complete {
		r.Pass = false
		r.addFinding("expected zero equilibria over the complete pinned space")
	} else {
		r.addFinding("machine-checked certificate: the gadget has no pure Nash equilibrium")
	}
	return r
}
