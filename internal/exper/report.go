// Package exper implements the reproduction experiments indexed in
// DESIGN.md, one per figure/theorem of the paper. Each experiment returns
// a Report with measured rows and findings; cmd/bbcexp prints them and the
// root-level benchmarks re-run them under testing.B.
package exper

import (
	"fmt"
	"math/rand"
	"strings"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier (E1..E16).
	ID string
	// Title names the paper artifact being reproduced.
	Title string
	// Rows are measured table rows.
	Rows []string
	// Findings are the experiment's conclusions, including any observed
	// divergence from the paper.
	Findings []string
	// Pass reports whether the experiment's reproduction criteria held.
	Pass bool
}

func (r *Report) addRow(format string, args ...interface{}) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

func (r *Report) addFinding(format string, args ...interface{}) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// String renders the report as a text block.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "=== %s [%s] %s\n", r.ID, status, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "    %s\n", row)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  * %s\n", f)
	}
	return b.String()
}

// Config tunes the experiment suite.
type Config struct {
	// Quick skips the multi-minute exhaustive scans (the full gadget
	// no-NE enumerations); their results are then reported from the
	// regression-tested fast witnesses instead.
	Quick bool
}

// All runs every experiment in order: E1–E16 reproduce the paper's
// figures and theorems, E17–E20 are extension experiments (the open
// conjecture probe, best-response-graph structure, the solver ablation,
// and gadget weight-space robustness).
func All(cfg Config) []*Report {
	return []*Report{
		E1(cfg), E2(cfg), E3(cfg), E4(cfg), E5(cfg), E6(cfg), E7(cfg), E8(cfg),
		E9(cfg), E10(cfg), E11(cfg), E12(cfg), E13(cfg), E14(cfg), E15(cfg), E16(cfg),
		E17(cfg), E18(cfg), E19(cfg), E20(cfg), E21(cfg), E22(cfg), E23(cfg),
	}
}

// newSeededRand returns a rand.Rand seeded deterministically; a shared
// helper for experiments that derive per-trial randomness from seeds.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
