// Package exper implements the reproduction experiments indexed in
// DESIGN.md, one per figure/theorem of the paper. Each experiment returns
// a Report with measured rows and findings; cmd/bbcexp prints them and the
// root-level benchmarks re-run them under testing.B.
package exper

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"bbc/internal/obs"
)

// Report is the outcome of one experiment. The JSON tags are the stable
// machine-readable schema shared by `bbcexp -json` and the sweep
// harness's per-tuple reports; renaming one is a schema change.
type Report struct {
	// ID is the experiment identifier (E1..E16).
	ID string `json:"id"`
	// Title names the paper artifact being reproduced.
	Title string `json:"title"`
	// Rows are measured table rows.
	Rows []string `json:"rows,omitempty"`
	// Findings are the experiment's conclusions, including any observed
	// divergence from the paper.
	Findings []string `json:"findings,omitempty"`
	// Pass reports whether the experiment's reproduction criteria held.
	Pass bool `json:"pass"`
	// WallMS is the experiment's wall time in milliseconds, filled in by
	// All so bbcexp runs double as perf baselines.
	WallMS float64 `json:"wall_ms"`
	// Counters holds the observability registry deltas attributable to
	// this experiment (work done: oracle builds, BFS traversals, profiles
	// checked, ...). Empty when no registry is installed.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// AddRow appends a formatted measured table row; exported so external
// harnesses (the sweep tool) can assemble reports with the same
// machinery the suite experiments use.
func (r *Report) AddRow(format string, args ...interface{}) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

// AddFinding appends a formatted conclusion line.
func (r *Report) AddFinding(format string, args ...interface{}) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

func (r *Report) addRow(format string, args ...interface{}) {
	r.AddRow(format, args...)
}

func (r *Report) addFinding(format string, args ...interface{}) {
	r.AddFinding(format, args...)
}

// String renders the report as a text block.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "=== %s [%s] %s\n", r.ID, status, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "    %s\n", row)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  * %s\n", f)
	}
	if r.WallMS > 0 {
		fmt.Fprintf(&b, "  ~ wall %.1fms%s\n", r.WallMS, countersLine(r.Counters))
	}
	return b.String()
}

// countersLine renders counter deltas compactly and deterministically.
func countersLine(counters map[string]int64) string {
	if len(counters) == 0 {
		return ""
	}
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" |")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, counters[k])
	}
	return b.String()
}

// Config tunes the experiment suite.
type Config struct {
	// Quick skips the multi-minute exhaustive scans (the full gadget
	// no-NE enumerations); their results are then reported from the
	// regression-tested fast witnesses instead.
	Quick bool
	// Ctx, when non-nil, propagates cancellation and deadlines into the
	// long scans (exhaustive enumerations, ensembles): an interrupted
	// experiment reports a partial, failing result instead of hanging,
	// and the suite runner stops scheduling further experiments.
	Ctx context.Context
}

// ctx returns the configured context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Interrupted reports whether the configured context has fired; suite
// runners use it to stop scheduling experiments after a signal.
func (c Config) Interrupted() bool {
	return c.Ctx != nil && c.Ctx.Err() != nil
}

// Experiment couples an experiment id with its runner, so callers can
// select experiments without running them first.
type Experiment struct {
	ID  string
	Run func(Config) *Report
}

// Suite lists every experiment in order: E1–E16 reproduce the paper's
// figures and theorems, E17–E23 are extension experiments (the open
// conjecture probe, best-response-graph structure, the solver ablation,
// gadget weight-space robustness, synchronous dynamics, willows padding,
// and overlay pressure).
func Suite() []Experiment {
	return []Experiment{
		{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4}, {"E5", E5},
		{"E6", E6}, {"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10},
		{"E11", E11}, {"E12", E12}, {"E13", E13}, {"E14", E14},
		{"E15", E15}, {"E16", E16}, {"E17", E17}, {"E18", E18},
		{"E19", E19}, {"E20", E20}, {"E21", E21}, {"E22", E22},
		{"E23", E23},
	}
}

// All runs the whole suite. Each report is annotated with its wall time
// and, when an obs registry is installed, the counter deltas of the work
// it performed.
func All(cfg Config) []*Report {
	suite := Suite()
	out := make([]*Report, 0, len(suite))
	for _, e := range suite {
		if cfg.Interrupted() {
			break
		}
		out = append(out, Instrumented(e.Run, cfg))
	}
	return out
}

// Instrumented runs one experiment and annotates its report with wall
// time and the global registry's counter deltas. Deltas are attributable
// to the experiment only when nothing else drives the registry
// concurrently, which holds for the serial suite runner.
func Instrumented(run func(Config) *Report, cfg Config) *Report {
	reg := obs.Global()
	before := reg.Snapshot()
	t0 := time.Now()
	r := run(cfg)
	r.WallMS = float64(time.Since(t0).Microseconds()) / 1000
	r.Counters = obs.Diff(before, reg.Snapshot())
	return r
}

// newSeededRand returns a rand.Rand for one trial of one experiment,
// seeded deterministically from the (experiment, trial) pair. The
// experiment id is hashed into the seed and the result is finalized with
// splitmix64, so the streams of different experiments are decorrelated:
// feeding raw trial indices 0..trials-1 straight into rand.NewSource
// would hand E17 and E19 (and dynamics.Ensemble, which derives trial
// RNGs from Seed+trial) identical generators for overlapping seed
// ranges, silently correlating trials the suite treats as independent.
func newSeededRand(experiment string, trial int64) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(experiment, trial)))
}

// SeedFor derives the namespaced RNG seed for a (namespace, trial) pair:
// an FNV-1a hash of the namespace, advanced by the trial index times the
// golden-ratio increment, pushed through the splitmix64 finalizer. Any
// two distinct (namespace, trial) pairs yield uncorrelated streams.
func SeedFor(namespace string, trial int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(namespace))
	z := h.Sum64() + uint64(trial)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
