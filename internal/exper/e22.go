package exper

import (
	"bbc/internal/construct"
	"bbc/internal/core"
)

// E22 tests Definition 1's closing remark — the Forest of Willows "can be
// extended to other values of n by adding additional leaves as evenly as
// possible across the trees" — under the natural interpretation that the
// extra nodes extend tails round-robin across sections. Exact checking
// shows the remark does not hold as stated: a majority of padded sizes
// admit strictly improving deviations (nodes rewire toward the interiors
// of the longer tails), while every zero-remainder (regular-shape) size
// verifies stable.
func E22(cfg Config) *Report {
	r := &Report{ID: "E22", Title: "Definition 1 remark: Willows on arbitrary n (transcription analysis)", Pass: true}
	for _, k := range []int{2, 3} {
		lo := (construct.WillowsParams{K: k, H: 1}).N()
		hi := lo + 18
		if !cfg.Quick {
			hi = lo + 26
		}
		stable, unstable := 0, 0
		uniformStable := true
		for n := lo; n <= hi; n++ {
			w, err := construct.FitWillows(n, k)
			if err != nil {
				r.Pass = false
				r.addFinding("fit (n=%d,k=%d): %v", n, k, err)
				continue
			}
			dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
			if err != nil {
				r.Pass = false
				r.addFinding("check (n=%d,k=%d): %v", n, k, err)
				continue
			}
			if dev == nil {
				stable++
			} else {
				unstable++
				// Regular shapes must never be unstable.
				if isRegularShape(n, k) {
					uniformStable = false
				}
			}
		}
		r.addRow("k=%d, n=%d..%d: %d stable, %d unstable under even tail padding", k, lo, hi, stable, unstable)
		if !uniformStable {
			r.Pass = false
			r.addFinding("a regular-shape size verified unstable — Theorem 4's core claim would be at risk")
		}
		if unstable == 0 {
			r.addFinding("k=%d: all padded sizes verified stable in this range", k)
		}
	}
	r.addFinding("the \"extends to other n\" remark fails under even tail padding: unbalanced tails admit strictly improving rewires; the regular shapes all verify stable (regression-tested)")
	return r
}

// isRegularShape reports whether FitWillows(n, k) lands on a uniform
// (zero-remainder) Forest of Willows.
func isRegularShape(n, k int) bool {
	h := 1
	for (construct.WillowsParams{K: k, H: h + 1}).N() <= n {
		h++
	}
	base := construct.WillowsParams{K: k, H: h}
	chains := k * base.Leaves()
	return (n-base.N())%chains == 0
}
