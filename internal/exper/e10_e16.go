package exper

import (
	"bbc/internal/analysis"
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

// E10 reproduces Theorem 6: round-robin best-response walks reach strong
// connectivity within n² steps from any start, measured over ensembles of
// random starts.
func E10(cfg Config) *Report {
	r := &Report{ID: "E10", Title: "Theorem 6: strong connectivity within n² steps", Pass: true}
	cases := []struct{ n, k, trials int }{{6, 1, 30}, {7, 2, 30}, {9, 2, 20}}
	if !cfg.Quick {
		cases = append(cases, struct{ n, k, trials int }{12, 3, 20})
	}
	for _, tc := range cases {
		spec := core.MustUniform(tc.n, tc.k)
		stats, err := dynamics.RunEnsemble(spec, dynamics.EnsembleConfig{
			N: tc.n, K: tc.k, Trials: tc.trials, Seed: 1000, Ctx: cfg.Ctx,
			Walk: dynamics.Options{StopAtStrongConnectivity: true},
		})
		if err != nil {
			r.Pass = false
			r.addFinding("(%d,%d): %v", tc.n, tc.k, err)
			continue
		}
		r.addRow("(n=%d,k=%d) %d random starts: connectivity median=%d max=%d (bound n²=%d)",
			tc.n, tc.k, tc.trials, stats.ConnectivityQuantile(0.5), stats.MaxConnectivityStep, tc.n*tc.n)
		if len(stats.ConnectivitySteps) != tc.trials {
			r.Pass = false
			r.addFinding("(%d,%d): %d/%d trials never reached connectivity",
				tc.n, tc.k, tc.trials-len(stats.ConnectivitySteps), tc.trials)
		}
		if stats.MaxConnectivityStep > tc.n*tc.n {
			r.Pass = false
			r.addFinding("(%d,%d): worst case %d exceeded n²", tc.n, tc.k, stats.MaxConnectivityStep)
		}
	}
	return r
}

// E11 reproduces the Section 4.3 Ω(n²) lower-bound instance: the ring+path
// graph forces the round-robin walk to spend Θ(n²) steps before strong
// connectivity (measured: steps = (p/2 + 1/3)·n under exact best
// responses, versus the paper's p·n for its adversarial walk).
func E11(cfg Config) *Report {
	r := &Report{ID: "E11", Title: "Section 4.3: ring+path Ω(n²) convergence instance", Pass: true}
	cases := []struct{ ring, path int }{{4, 2}, {8, 4}, {12, 6}, {16, 8}}
	if !cfg.Quick {
		cases = append(cases, struct{ ring, path int }{24, 12}, struct{ ring, path int }{32, 16})
	}
	type point struct{ n, steps int }
	var pts []point
	for _, tc := range cases {
		spec, p, err := construct.RingPath(tc.ring, tc.path)
		if err != nil {
			r.Pass = false
			r.addFinding("build: %v", err)
			continue
		}
		n := tc.ring + tc.path
		res, err := dynamics.Run(spec, p,
			&dynamics.RoundRobin{Order: construct.RingPathRoundRobinOrder(tc.ring, tc.path)},
			core.SumDistances, dynamics.Options{Ctx: cfg.Ctx, MaxSteps: 50 * n * n, StopAtStrongConnectivity: true})
		if err != nil {
			r.Pass = false
			r.addFinding("run: %v", err)
			continue
		}
		r.addRow("n=%-3d (ring %d, path %d): connectivity at step %d = %.2f rounds (n²=%d)",
			n, tc.ring, tc.path, res.ConnectivityStep, float64(res.ConnectivityStep)/float64(n), n*n)
		pts = append(pts, point{n: n, steps: res.ConnectivityStep})
	}
	// Quadratic shape: doubling n should ~quadruple steps.
	for i := 1; i < len(pts); i++ {
		if pts[i].n == 2*pts[i-1].n && pts[i].steps < 3*pts[i-1].steps {
			r.Pass = false
			r.addFinding("scaling not quadratic between n=%d and n=%d", pts[i-1].n, pts[i].n)
		}
	}
	if r.Pass {
		r.addFinding("steps grow as Θ(n²): measured (p/2+1/3)·n with p = n/3")
	}
	return r
}

// E12 reproduces Figure 4: a certified best-response loop in the
// (7,2)-uniform game under round-robin scheduling — six strict
// improvements by three nodes over two rounds returning to the start, so
// uniform BBC games are not ordinal potential games.
func E12(cfg Config) *Report {
	r := &Report{ID: "E12", Title: "Figure 4: best-response loop in the (7,2)-uniform game", Pass: true}
	spec, start := construct.Figure4Start()
	res, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(7), core.SumDistances,
		dynamics.Options{MaxSteps: 300, DetectLoops: true})
	if err != nil {
		r.Pass = false
		r.addFinding("run: %v", err)
		return r
	}
	if res.Loop == nil {
		r.Pass = false
		r.addFinding("no loop found from the Figure 4 start")
		return r
	}
	r.addRow("loop: %d steps, %d moves, starting profile %v", res.Loop.Length, len(res.Loop.Moves), res.Loop.Start)
	for _, mv := range res.Loop.Moves {
		r.addRow("  node %d rewires %v -> %v (cost %d -> %d)", mv.Node, mv.From, mv.To, mv.CostBefore, mv.CostAfter)
	}
	if len(res.Loop.Moves) != 6 {
		r.Pass = false
		r.addFinding("expected the six-move structure of Figure 4")
	} else {
		r.addFinding("six deviations by three nodes over two rounds return to the start — the same shape as the paper's Figure 4 (which shows nodes 6,3,2; ours shows 3,4,1 from a search-found start)")
	}
	return r
}

// E13 reproduces the Section 4.3 experimental remarks on max-cost-first
// walks: they need not converge from arbitrary starts, and from the empty
// graph the outcome is tie-breaking-sensitive — with lexicographic
// tie-breaking the (6,2) and (8,2) games loop even from the empty start.
func E13(cfg Config) *Report {
	r := &Report{ID: "E13", Title: "Section 4.3 experiments: max-cost-first walks", Pass: true}
	// Random starts: mixture of convergence and loops.
	spec := core.MustUniform(6, 2)
	stats, err := dynamics.RunEnsemble(spec, dynamics.EnsembleConfig{
		N: 6, K: 2, Trials: 20, Seed: 2000, Scheduler: "max-cost-first", Ctx: cfg.Ctx,
		Walk: dynamics.Options{MaxSteps: 3000, DetectLoops: true},
	})
	if err != nil {
		r.Pass = false
		r.addFinding("ensemble: %v", err)
		return r
	}
	r.addRow("(6,2) max-cost-first, 20 random starts: converged=%d looped=%d exhausted=%d",
		stats.Converged, stats.Looped, stats.Exhausted)
	if stats.Looped == 0 {
		r.addFinding("no loops from random starts in this sample (the paper reports non-convergence exists)")
	}
	// From the empty graph.
	for _, tc := range []struct{ n, k int }{{5, 1}, {7, 2}, {6, 2}, {8, 2}} {
		s := core.MustUniform(tc.n, tc.k)
		res, err := dynamics.Run(s, core.NewEmptyProfile(tc.n),
			&dynamics.MaxCostFirst{Agg: core.SumDistances}, core.SumDistances,
			dynamics.Options{MaxSteps: 3000, DetectLoops: true})
		if err != nil {
			r.Pass = false
			r.addFinding("(%d,%d): %v", tc.n, tc.k, err)
			continue
		}
		outcome := "exhausted"
		if res.Converged {
			outcome = "converged"
		} else if res.Loop != nil {
			outcome = "looped"
		}
		r.addRow("(n=%d,k=%d) from empty: %s after %d steps", tc.n, tc.k, outcome, res.Steps)
	}
	r.addFinding("divergence from the paper: with lexicographic tie-breaking, the empty-start max-cost-first walk loops at (6,2) and (8,2); the paper's 'seems to converge' observation is tie-breaking-sensitive")
	return r
}

// E14 documents the Theorem 7 / Figure 5 situation: the BBC-max
// no-equilibrium gadget depends on figure details that did not survive
// into the text source, and the text's weight recipe alone is
// insufficient — under the max aggregation a center that values both its
// tops pays ζ·M whichever single link it buys, so it is indifferent and
// the matching-pennies switch never engages. The sum-cost gadget,
// re-checked under max cost, indeed acquires pure equilibria.
func E14(cfg Config) *Report {
	r := &Report{ID: "E14", Title: "Theorem 7 / Figure 5: BBC-max gadget (transcription analysis)", Pass: true}
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		r.Pass = false
		r.addFinding("pinning: %v", err)
		return r
	}
	res, err := core.EnumeratePureNEOpts(d, core.MaxDistance, ss,
		core.EnumConfig{Ctx: cfg.Ctx, MaxEquilibria: 1})
	if err != nil {
		r.Pass = false
		r.addFinding("enumeration: %v", err)
		return r
	}
	r.addRow("sum-gadget under max cost: first equilibrium found after %d profiles (it has many)", res.Checked)
	if len(res.Equilibria) == 0 {
		r.Pass = false
		r.addFinding("unexpected: the sum gadget has no max-cost equilibrium")
		return r
	}
	r.addFinding("under max aggregation, a budget-1 center valuing two tops pays ζ·M for the unlinked top regardless of its choice, so the Theorem 1 switch collapses into indifference")
	r.addFinding("the lost Figure 5 must add in-links (the sink chains) making every valued target finitely reachable in all states; the text alone underdetermines them — documented as a transcription limitation in DESIGN.md")
	return r
}

// E15 reproduces Theorem 8 / Figure 6: the (2k−1)-tails graph is a pure
// Nash equilibrium of the uniform BBC-max game with social cost Θ(n²/k),
// giving the Ω(n/(k·log_k n)) price-of-anarchy lower bound.
func E15(cfg Config) *Report {
	r := &Report{ID: "E15", Title: "Theorem 8 / Figure 6: BBC-max price of anarchy", Pass: true}
	cases := []construct.MaxPoAParams{{K: 3, L: 2}, {K: 3, L: 4}}
	if !cfg.Quick {
		cases = append(cases, construct.MaxPoAParams{K: 4, L: 3}, construct.MaxPoAParams{K: 3, L: 6})
	}
	for _, p := range cases {
		m, err := construct.NewMaxPoA(p)
		if err != nil {
			r.Pass = false
			r.addFinding("build %+v: %v", p, err)
			continue
		}
		dev, err := core.FindDeviation(m.Spec, m.Profile, core.MaxDistance, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("check %+v: %v", p, err)
			continue
		}
		cost := core.SocialCost(m.Spec, m.Profile, core.MaxDistance)
		lb := analysis.MaxOptimumLowerBound(p.N(), p.K)
		r.addRow("K=%d L=%d n=%-3d stable=%-5v socialMaxCost=%-6d optimumLB=%-4d PoA>=%.2f",
			p.K, p.L, p.N(), dev == nil, cost, lb, float64(cost)/float64(lb))
		if dev != nil {
			r.Pass = false
			r.addFinding("max-PoA graph %+v not a Nash equilibrium: %+v", p, dev)
		}
	}
	if r.Pass {
		r.addFinding("the construction verifies as a BBC-max equilibrium; per-node max distance l+2 gives the Ω(n/(k·log_k n)) PoA shape")
	}
	return r
}

// E16 reproduces Theorem 9: the l=0 Forest of Willows is stable under the
// max-distance cost too, so the BBC-max price of stability is Θ(1).
func E16(cfg Config) *Report {
	r := &Report{ID: "E16", Title: "Theorem 9: BBC-max price of stability Θ(1)", Pass: true}
	params := []construct.WillowsParams{{K: 2, H: 2, L: 0}, {K: 3, H: 1, L: 0}}
	if !cfg.Quick {
		params = append(params, construct.WillowsParams{K: 2, H: 3, L: 0}, construct.WillowsParams{K: 3, H: 2, L: 0})
	}
	for _, p := range params {
		w, err := construct.NewWillows(p)
		if err != nil {
			r.Pass = false
			r.addFinding("build %+v: %v", p, err)
			continue
		}
		dev, err := core.FindDeviation(w.Spec, w.Profile, core.MaxDistance, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("check %+v: %v", p, err)
			continue
		}
		cost := core.SocialCost(w.Spec, w.Profile, core.MaxDistance)
		lb := analysis.MaxOptimumLowerBound(p.N(), p.K)
		r.addRow("K=%d H=%d n=%-3d stableUnderMax=%-5v socialMaxCost=%-5d optimumLB=%-4d ratio=%.2f",
			p.K, p.H, p.N(), dev == nil, cost, lb, float64(cost)/float64(lb))
		if dev != nil {
			r.Pass = false
			r.addFinding("l=0 willows %+v not max-stable: %+v", p, dev)
		}
	}
	if r.Pass {
		r.addFinding("l=0 willows are max-stable within a constant factor of the optimum: PoS = Θ(1) for BBC-max")
	}
	return r
}
