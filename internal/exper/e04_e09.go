package exper

import (
	"math"

	"bbc/internal/analysis"
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/group"
)

// willowsSweep returns the Willows parameter family the stability and
// cost-spectrum experiments use (cfg.Quick trims the larger instances).
func willowsSweep(cfg Config) []construct.WillowsParams {
	params := []construct.WillowsParams{
		{K: 1, H: 2, L: 3},
		{K: 2, H: 1, L: 1},
		{K: 2, H: 2, L: 0},
		{K: 2, H: 2, L: 1},
		{K: 2, H: 2, L: 2},
		{K: 3, H: 1, L: 0},
	}
	if !cfg.Quick {
		params = append(params,
			construct.WillowsParams{K: 2, H: 3, L: 0},
			construct.WillowsParams{K: 2, H: 3, L: 1},
			construct.WillowsParams{K: 2, H: 3, L: 2},
			construct.WillowsParams{K: 3, H: 2, L: 0},
		)
	}
	return params
}

// E4 reproduces Definition 1 / Figure 3 / Theorem 4's existence claim:
// Forest of Willows graphs are pure Nash equilibria across the parameter
// family, spanning the social-cost spectrum as the tail length grows.
func E4(cfg Config) *Report {
	r := &Report{ID: "E4", Title: "Theorem 4 / Figure 3: Forest of Willows stability & cost spectrum", Pass: true}
	for _, p := range willowsSweep(cfg) {
		w, err := construct.NewWillows(p)
		if err != nil {
			r.Pass = false
			r.addFinding("build %+v: %v", p, err)
			continue
		}
		dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("check %+v: %v", p, err)
			continue
		}
		cost := core.SocialCost(w.Spec, w.Profile, core.SumDistances)
		r.addRow("K=%d H=%d L=%d n=%-4d constraint=%-5v stable=%-5v socialCost=%d",
			p.K, p.H, p.L, p.N(), p.MeetsPaperConstraint(), dev == nil, cost)
		if dev != nil {
			r.Pass = false
			r.addFinding("willows %+v not stable: %+v", p, dev)
		}
	}
	if r.Pass {
		r.addFinding("every constructed Willows graph verified as a pure Nash equilibrium (exact best-response check per node)")
	}
	return r
}

// E5 reproduces Lemma 1 (fairness): in stable graphs all node costs are
// within the additive bound n + n·⌊log_k n⌋ and the multiplicative bound
// 2 + 1/k + o(1).
func E5(cfg Config) *Report {
	r := &Report{ID: "E5", Title: "Lemma 1: fairness of stable graphs", Pass: true}
	for _, p := range willowsSweep(cfg) {
		w, err := construct.NewWillows(p)
		if err != nil {
			r.Pass = false
			r.addFinding("build %+v: %v", p, err)
			continue
		}
		f := analysis.MeasureFairness(w.Spec, w.Profile, core.SumDistances)
		add := analysis.FairnessAdditiveBound(p.N(), p.K)
		r.addRow("K=%d H=%d L=%d n=%-4d min=%-6d max=%-6d ratio=%.3f (bound %.3f+o(1)) gap=%d (bound %d)",
			p.K, p.H, p.L, p.N(), f.Min, f.Max, f.Ratio, analysis.FairnessRatioBound(p.K), f.Gap, add)
		if f.Gap > add {
			r.Pass = false
			r.addFinding("additive fairness bound violated at %+v", p)
		}
	}
	if r.Pass {
		r.addFinding("all stable instances respect the Lemma 1 fairness bounds")
	}
	return r
}

// E6 reproduces Lemma 7 (diameter): stable uniform graphs have diameter
// O(sqrt(n·log_k n)) and contain a node within O(sqrt n) of everything.
func E6(cfg Config) *Report {
	r := &Report{ID: "E6", Title: "Lemma 7: diameter of stable graphs", Pass: true}
	for _, p := range willowsSweep(cfg) {
		w, err := construct.NewWillows(p)
		if err != nil {
			r.Pass = false
			r.addFinding("build %+v: %v", p, err)
			continue
		}
		d := analysis.MeasureDiameter(w.Spec, w.Profile)
		bound := analysis.DiameterBound(p.N(), p.K, 4)
		sqrtN := 4 * math.Sqrt(float64(p.N()))
		r.addRow("K=%d H=%d L=%d n=%-4d diameter=%-3d (4·sqrt(n·log n)=%.1f) radius=%-3d (4·sqrt n=%.1f)",
			p.K, p.H, p.L, p.N(), d.Diameter, bound, d.Radius, sqrtN)
		if float64(d.Diameter) > bound {
			r.Pass = false
			r.addFinding("diameter bound shape violated at %+v", p)
		}
		if float64(d.Radius) > sqrtN {
			r.Pass = false
			r.addFinding("radius bound shape violated at %+v", p)
		}
	}
	return r
}

// E7 traces the Theorem 4 price-of-anarchy lower-bound curve using the
// Willows family (fixing K, growing L pushes the equilibrium social cost
// from the O(n² log_k n) optimum end toward Ω(n²·sqrt(n/k))), and the
// price-of-stability Θ(1) point at L=0.
func E7(cfg Config) *Report {
	r := &Report{ID: "E7", Title: "Theorem 4: PoA lower-bound curve and PoS = Θ(1)", Pass: true}
	sweep := []construct.WillowsParams{
		{K: 2, H: 2, L: 0}, {K: 2, H: 2, L: 1}, {K: 2, H: 2, L: 2},
	}
	if !cfg.Quick {
		sweep = append(sweep,
			construct.WillowsParams{K: 2, H: 2, L: 3},
			construct.WillowsParams{K: 2, H: 2, L: 4},
			construct.WillowsParams{K: 2, H: 2, L: 6},
		)
	}
	prevNormalized := 0.0
	for i, p := range sweep {
		w, err := construct.NewWillows(p)
		if err != nil {
			r.Pass = false
			r.addFinding("build %+v: %v", p, err)
			continue
		}
		cost := core.SocialCost(w.Spec, w.Profile, core.SumDistances)
		lb := analysis.SocialOptimumLowerBound(p.N(), p.K)
		pt := analysis.NewPoAPoint(p.N(), p.K, cost, lb, "willows tail sweep")
		r.addRow("%s", pt)
		// Normalize by the paper's predicted shape sqrt(n/k)/log_k n to see
		// a roughly flat-to-growing curve.
		if i > 0 && pt.Ratio < prevNormalized*0.9 {
			r.Pass = false
			r.addFinding("PoA curve decreased sharply at %+v", p)
		}
		prevNormalized = pt.Ratio
	}
	// PoS point: the L=0 willows is within a constant of the optimum.
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 3, L: 0})
	if err == nil {
		cost := core.SocialCost(w.Spec, w.Profile, core.SumDistances)
		lb := analysis.SocialOptimumLowerBound(w.Params.N(), w.Params.K)
		ratio := float64(cost) / float64(lb)
		r.addRow("PoS point: L=0 willows n=%d cost=%d optimumLB=%d ratio=%.2f", w.Params.N(), cost, lb, ratio)
		if ratio > 4 {
			r.Pass = false
			r.addFinding("PoS ratio too large: %.2f", ratio)
		} else {
			r.addFinding("price of stability confirmed Θ(1): best equilibrium within %.2fx of the optimum lower bound", ratio)
		}
	}
	// Exact PoA/PoS on tiny games (full equilibrium enumeration + exact
	// social optimum), anchoring the curve's left end.
	for _, tc := range []struct{ n, k int }{{4, 1}, {5, 1}} {
		spec := core.MustUniform(tc.n, tc.k)
		poa, pos, err := core.PriceOfAnarchyExact(spec, core.SumDistances, 5_000_000)
		if err != nil {
			r.Pass = false
			r.addFinding("exact PoA (%d,%d): %v", tc.n, tc.k, err)
			continue
		}
		r.addRow("exact (n=%d,k=%d): PoA=%.3f PoS=%.3f (full enumeration)", tc.n, tc.k, poa, pos)
		if pos < 1 || poa < pos {
			r.Pass = false
			r.addFinding("inconsistent exact PoA/PoS at (%d,%d)", tc.n, tc.k)
		}
	}
	// Sampled equilibrium band at a size beyond exact enumeration.
	spec := core.MustUniform(16, 2)
	sample, err := analysis.SampleEquilibria(spec, 12, 7, 0)
	if err != nil {
		r.Pass = false
		r.addFinding("sampling: %v", err)
		return r
	}
	if sample.Reached > 0 {
		r.addRow("sampled (n=16,k=2): %d/%d walks converged, %d distinct equilibria, cost band %d..%d (spread %.3f)",
			sample.Reached, sample.Starts, sample.Distinct, sample.Best(), sample.Worst(), sample.Spread())
	} else {
		r.addRow("sampled (n=16,k=2): no walk converged within bound (loops dominate)")
	}
	return r
}

// E8 reproduces Theorem 5 and Corollary 1: Abelian Cayley graphs with
// k >= 2 are unstable once n is large enough, including hypercubes with
// k > 4; the witness deviation doubles a generator edge.
func E8(cfg Config) *Report {
	r := &Report{ID: "E8", Title: "Theorem 5 / Corollary 1: Abelian Cayley graphs are unstable", Pass: true}
	cases := []struct {
		name string
		ab   *group.Abelian
		gens []int
	}{
		{name: "Z_16 {1,4}", ab: group.MustCyclic(16), gens: []int{1, 4}},
		{name: "Z_20 {1,2}", ab: group.MustCyclic(20), gens: []int{1, 2}},
		{name: "Z_24 {1,5}", ab: group.MustCyclic(24), gens: []int{1, 5}},
		{name: "Z_30 {1,6}", ab: group.MustCyclic(30), gens: []int{1, 6}},
		{name: "Z_4xZ_8", ab: mustAb(4, 8), gens: []int{1, 4}},
	}
	if !cfg.Quick {
		cases = append(cases, struct {
			name string
			ab   *group.Abelian
			gens []int
		}{name: "Z_40 {1,3,9}", ab: group.MustCyclic(40), gens: []int{1, 3, 9}})
	}
	for _, tc := range cases {
		stable, _, err := analysis.CayleyStable(tc.ab, tc.gens, core.SumDistances, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("%s: %v", tc.name, err)
			continue
		}
		paper, err := analysis.BestPaperDeviation(tc.ab, tc.gens, core.SumDistances)
		if err != nil {
			r.Pass = false
			r.addFinding("%s: %v", tc.name, err)
			continue
		}
		r.addRow("%-14s n=%-3d stable=%-5v paperDeviation(a_i->2a_i) Δcost=%d", tc.name, tc.ab.Order(), stable, paper.Delta)
		if stable {
			r.Pass = false
			r.addFinding("%s unexpectedly stable", tc.name)
		}
	}
	// Corollary 1: hypercube d=5.
	if !cfg.Quick {
		stable, err := analysis.HypercubeStable(5, core.Options{})
		if err != nil {
			r.Pass = false
			r.addFinding("hypercube: %v", err)
		} else {
			r.addRow("hypercube d=5 (n=32, k=5): stable=%v", stable)
			if stable {
				r.Pass = false
				r.addFinding("32-node hypercube unexpectedly stable")
			}
		}
	} else {
		r.addRow("hypercube d=5: unstable (regression-tested; skipped in quick mode)")
	}
	r.addFinding("regularity and stability are incompatible at these sizes, as Theorem 5 predicts; note the doubling witness degenerates on Z_2^d (every element has order 2), where the general exact check is used instead")
	return r
}

func mustAb(moduli ...int) *group.Abelian {
	ab, err := group.NewAbelian(moduli...)
	if err != nil {
		panic(err)
	}
	return ab
}

// E9 reproduces Lemma 8: dense Abelian Cayley graphs (k > (n−2)/2) are
// stable.
func E9(cfg Config) *Report {
	r := &Report{ID: "E9", Title: "Lemma 8: dense Cayley graphs are stable", Pass: true}
	cases := []struct {
		name string
		ab   *group.Abelian
		gens []int
	}{
		{name: "Z_6 k=3", ab: group.MustCyclic(6), gens: []int{1, 2, 3}},
		{name: "Z_8 k=4", ab: group.MustCyclic(8), gens: []int{1, 2, 3, 4}},
		{name: "Z_9 k=4", ab: group.MustCyclic(9), gens: []int{1, 2, 3, 4}},
		{name: "Z_2xZ_4 k=4", ab: mustAb(2, 4), gens: []int{1, 2, 3, 4}},
	}
	for _, tc := range cases {
		stable, err := analysis.DenseCayleyStable(tc.ab, tc.gens)
		if err != nil {
			r.Pass = false
			r.addFinding("%s: %v", tc.name, err)
			continue
		}
		r.addRow("%-12s n=%d k=%d: stable=%v", tc.name, tc.ab.Order(), len(tc.gens), stable)
		if !stable {
			r.Pass = false
			r.addFinding("%s should be stable by Lemma 8", tc.name)
		}
	}
	// The k=1 cycle (the paper's "trivially stable" boundary case).
	stable, _, err := analysis.CayleyStable(group.MustCyclic(9), []int{1}, core.SumDistances, core.Options{})
	if err == nil {
		r.addRow("Z_9 k=1 directed cycle: stable=%v", stable)
		if !stable {
			r.Pass = false
		}
	}
	return r
}
