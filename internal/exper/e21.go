package exper

import (
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

// E21 probes the paper's "for convenience, only one node changes its links
// per step" modeling choice: what happens under synchronous best
// responses, where every unstable player rewires at once each round? The
// synchronous dynamics are deterministic, so every run either converges
// (necessarily to a pure NE) or enters a cycle; we compare convergence
// rates against the sequential round-robin walk over the same starts.
func E21(cfg Config) *Report {
	r := &Report{ID: "E21", Title: "Extension: synchronous vs sequential best-response dynamics", Pass: true}
	trials := 20
	if cfg.Quick {
		trials = 10
	}
	for _, tc := range []struct{ n, k int }{{5, 1}, {6, 1}, {6, 2}, {7, 2}} {
		spec := core.MustUniform(tc.n, tc.k)
		seqConv, simConv, simLoop := 0, 0, 0
		for seed := int64(0); seed < int64(trials); seed++ {
			start := dynamics.RandomStart(newSeededRand("E21", seed), tc.n, tc.k)
			seq, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(tc.n), core.SumDistances,
				dynamics.Options{MaxSteps: 2000})
			if err != nil {
				r.Pass = false
				r.addFinding("sequential (%d,%d): %v", tc.n, tc.k, err)
				return r
			}
			if seq.Converged {
				seqConv++
			}
			sim, err := dynamics.RunSimultaneous(spec, start, core.SumDistances, 2000)
			if err != nil {
				r.Pass = false
				r.addFinding("synchronous (%d,%d): %v", tc.n, tc.k, err)
				return r
			}
			if sim.Converged {
				simConv++
			}
			if sim.Loop != nil {
				simLoop++
			}
		}
		r.addRow("(n=%d,k=%d) over %d starts: sequential converged %d; synchronous converged %d, cycled %d",
			tc.n, tc.k, trials, seqConv, simConv, simLoop)
	}
	// The canonical oscillation: synchronous updates from the empty graph.
	spec := core.MustUniform(6, 1)
	sim, err := dynamics.RunSimultaneous(spec, core.NewEmptyProfile(6), core.SumDistances, 500)
	if err != nil {
		r.Pass = false
		r.addFinding("from-empty: %v", err)
		return r
	}
	if sim.Loop != nil {
		r.addRow("(6,1) from empty: synchronous dynamics cycle with period %d (sequential converges)", sim.Loop.Length)
	} else {
		r.addRow("(6,1) from empty: converged=%v in %d rounds", sim.Converged, sim.Rounds)
	}
	r.addFinding("the paper's one-mover-per-step convention is load-bearing: synchronous updates oscillate on starts the sequential walk resolves")
	return r
}
