package runctl_test

// The crash-consistency property sweep: a checkpointed Theorem 1 gadget
// scan persists its progress through a fault-injecting filesystem, and
// for EVERY filesystem operation the run performs, a separate subtest
// crashes the run at exactly that operation (in every failure mode that
// applies to it) and asserts the recovery invariants:
//
//  1. Old-or-new: the surviving generation set {ckpt, ckpt.prev} yields
//     a snapshot that is exactly one of the snapshots a successful save
//     durably published — never a torn hybrid, never a lost-page-cache
//     ghost. When nothing was durably published, recovery must say so
//     and a fresh start is the correct outcome.
//  2. Resume equivalence: continuing the scan from the recovered
//     snapshot (or from scratch) under the same profile budget yields a
//     result byte-identical (as JSON) to an uninterrupted run.
//  3. Journal salvage: whatever the crash left of the run journal,
//     RecoverJournal extracts a clean prefix of well-formed records
//     with contiguous sequence numbers.
//
// The test lives in package runctl_test so it can drive the real
// enumeration engine (internal/core imports runctl, so an internal test
// would cycle).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"testing"
	"time"

	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/faultfs"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

const (
	sweepKind = "enumeration"
	// sweepBudget/sweepEvery give four periodic checkpoints plus the
	// final snapshot save: enough saves that every store code path
	// (first save, rotation, steady state, final) appears in the op
	// trace, while keeping the sweep fast enough for -race CI.
	sweepBudget = 640
	sweepEvery  = 128
)

// sweepRun fixes the scan under test: the 14-node no-NE gadget from
// Theorem 1, scanned serially (deterministic operation order) over its
// pinned search space with a hard profile budget.
type sweepRun struct {
	spec core.Spec
	agg  core.Aggregation
	ss   *core.SearchSpace
	fp   string
}

func newSweepRun(t *testing.T) *sweepRun {
	t.Helper()
	spec := construct.MatchingPennies(construct.DefaultGadgetWeights())
	ss, err := core.PinnedSpace(spec, 0)
	if err != nil {
		t.Fatalf("pinned space: %v", err)
	}
	return &sweepRun{
		spec: spec,
		agg:  core.SumDistances,
		ss:   ss,
		fp:   core.EnumFingerprint(spec, core.SumDistances, ss),
	}
}

// runCheckpointed runs the budgeted scan, persisting periodic and final
// snapshots through st and journaling through j, mirroring the CLI
// flow: a failed save is journaled and the scan keeps computing. It
// returns the Checked values of the snapshots whose save reported
// success, in save order.
func (r *sweepRun) runCheckpointed(t *testing.T, st *runctl.Store, j *obs.Journal, resume *core.EnumCheckpoint) []uint64 {
	t.Helper()
	var published []uint64
	save := func(cp *core.EnumCheckpoint) {
		ck, err := runctl.NewCheckpoint(sweepKind, r.fp, runctl.StatusBudget, nil, cp)
		if err != nil {
			t.Fatalf("build checkpoint: %v", err)
		}
		if err := st.Save(ck); err != nil {
			// Graceful degradation: the run records the failure and keeps
			// computing on the in-memory state.
			j.Event("checkpoint_error", map[string]any{"error": err.Error()})
			return
		}
		published = append(published, cp.Checked)
		j.Checkpoint(st.Path, sweepKind, map[string]any{"checked": cp.Checked})
	}
	res, err := core.EnumeratePureNEOpts(r.spec, r.agg, r.ss, core.EnumConfig{
		MaxProfiles:     sweepBudget,
		CheckpointEvery: sweepEvery,
		OnCheckpoint:    save,
		Resume:          resume,
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Resume != nil {
		save(res.Resume)
	}
	j.RunStatus(res.Status.String(), res.Complete, map[string]any{"checked": res.Checked})
	return published
}

// uninterrupted runs the same budgeted scan with no persistence at all
// and returns its result as canonical JSON — the reference every
// crashed-and-resumed run must reproduce byte for byte.
func (r *sweepRun) uninterrupted(t *testing.T) []byte {
	t.Helper()
	res, err := core.EnumeratePureNEOpts(r.spec, r.agg, r.ss, core.EnumConfig{MaxProfiles: sweepBudget})
	if err != nil {
		t.Fatalf("reference scan: %v", err)
	}
	if res.Status != runctl.StatusBudget || res.Resume == nil {
		t.Fatalf("reference scan must stop at the budget with resume state, got %v", res.Status)
	}
	return mustJSON(t, res)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// sweepOps fixes the subtest order; every operation class the run
// issues gets swept.
var sweepOps = []faultfs.Op{
	faultfs.OpCreate, faultfs.OpCreateTemp, faultfs.OpOpenAppend,
	faultfs.OpRead, faultfs.OpWrite, faultfs.OpSync, faultfs.OpClose,
	faultfs.OpRename, faultfs.OpRemove, faultfs.OpStat, faultfs.OpTruncate,
}

// sweepModes maps each operation class to the failure modes that can
// physically happen to it.
var sweepModes = map[faultfs.Op][]faultfs.Mode{
	faultfs.OpCreate:     {faultfs.ModeFail},
	faultfs.OpCreateTemp: {faultfs.ModeFail, faultfs.ModeENOSPC},
	faultfs.OpOpenAppend: {faultfs.ModeFail},
	faultfs.OpRead:       {faultfs.ModeFail, faultfs.ModeShortRead},
	faultfs.OpWrite:      {faultfs.ModeFail, faultfs.ModeTorn, faultfs.ModeENOSPC},
	faultfs.OpSync:       {faultfs.ModeFail, faultfs.ModeDropSync},
	faultfs.OpClose:      {faultfs.ModeFail},
	faultfs.OpRename:     {faultfs.ModeFail},
	faultfs.OpRemove:     {faultfs.ModeFail},
	faultfs.OpStat:       {faultfs.ModeFail},
	faultfs.OpTruncate:   {faultfs.ModeFail},
}

// TestCrashSweep is the property test: one crash per failpoint, every
// failpoint of the run, every applicable failure mode.
func TestCrashSweep(t *testing.T) {
	r := newSweepRun(t)
	refJSON := r.uninterrupted(t)

	// Counting pass: run the identical persistence flow fault-free
	// through an injector to enumerate every filesystem touch. The
	// faulted runs replay exactly this operation sequence up to their
	// fault, so (op, nth) pairs from these counts are precisely the
	// run's failpoints.
	countDir := t.TempDir()
	counter := faultfs.NewInjector(faultfs.OS{})
	countStore := &runctl.Store{Path: filepath.Join(countDir, "scan.ckpt"), FS: counter}
	countJournal, err := obs.OpenJournalFS(counter, filepath.Join(countDir, "scan.jsonl"), nil)
	if err != nil {
		t.Fatalf("counting-pass journal: %v", err)
	}
	published := r.runCheckpointed(t, countStore, countJournal, nil)
	if err := countJournal.Close(); err != nil {
		t.Fatalf("counting-pass journal close: %v", err)
	}
	if len(published) < 3 {
		t.Fatalf("counting pass published only %v; the sweep needs several generations", published)
	}
	counts := counter.Counts()
	if counts[faultfs.OpWrite] == 0 || counts[faultfs.OpSync] == 0 || counts[faultfs.OpRename] == 0 {
		t.Fatalf("counting pass missed core save operations: %v", counts)
	}

	for _, op := range sweepOps {
		for nth := 1; nth <= counts[op]; nth++ {
			for _, mode := range sweepModes[op] {
				f := faultfs.Fault{Op: op, Nth: nth, Mode: mode, TornBytes: 11}
				t.Run(f.String(), func(t *testing.T) {
					t.Parallel()
					r.sweepOne(t, refJSON, f)
				})
			}
		}
	}
}

// sweepOne crashes one run at fault f and asserts the three recovery
// invariants.
func (r *sweepRun) sweepOne(t *testing.T, refJSON []byte, f faultfs.Fault) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, f)
	inj.CrashOnFault = true
	ckptPath := filepath.Join(dir, "scan.ckpt")
	journalPath := filepath.Join(dir, "scan.jsonl")

	st := &runctl.Store{Path: ckptPath, FS: inj, Retries: 2, Retry: runctl.Backoff{Sleep: func(time.Duration) {}}}
	j, jerr := obs.OpenJournalFS(inj, journalPath, nil)
	if jerr != nil {
		j = nil // the journal open itself was the failpoint; a nil journal drops events
	}
	published := r.runCheckpointed(t, st, j, nil)
	j.Close() //nolint:errcheck // post-crash close errors are expected
	if inj.Fired() == 0 {
		t.Fatalf("fault %v never fired; the failpoint enumeration is stale", f)
	}
	inj.Crash()

	// A dropped fsync makes the most recent publish non-durable: the
	// crash truncates it back to its synced (empty) prefix, so only the
	// earlier generations count as durably published.
	durable := published
	if f.Mode == faultfs.ModeDropSync && len(durable) > 0 {
		durable = durable[:len(durable)-1]
	}

	// Invariant 1 — old-or-new: recover on the clean filesystem.
	rst := &runctl.Store{Path: ckptPath}
	ck, rec, err := rst.Load()
	var resume *core.EnumCheckpoint
	switch {
	case err == nil:
		var cp core.EnumCheckpoint
		if derr := ck.Decode(sweepKind, r.fp, &cp); derr != nil {
			t.Fatalf("recovered generation does not decode: %v", derr)
		}
		ok := false
		for _, checked := range durable {
			ok = ok || checked == cp.Checked
		}
		if !ok {
			t.Fatalf("recovered snapshot checked=%d is not a durably published generation %v (recovery: %+v)", cp.Checked, durable, rec)
		}
		resume = &cp
	case len(durable) == 0:
		// Crash before anything durable: starting over is the correct
		// recovery, and the loader must have said so plainly.
		if !errors.Is(err, fs.ErrNotExist) && !runctl.IsCorrupt(err) {
			t.Fatalf("no durable snapshot; want not-found or corrupt diagnosis, got: %v", err)
		}
	default:
		t.Fatalf("durable snapshots %v exist but recovery failed: %v", durable, err)
	}

	// Invariant 2 — resume equivalence: continue under the same budget
	// and compare against the uninterrupted run, byte for byte.
	var cfg core.EnumConfig
	cfg.MaxProfiles = sweepBudget
	cfg.Resume = resume
	res, rerr := core.EnumeratePureNEOpts(r.spec, r.agg, r.ss, cfg)
	if rerr != nil {
		t.Fatalf("resume scan: %v", rerr)
	}
	if got := mustJSON(t, res); !bytes.Equal(got, refJSON) {
		t.Errorf("resumed result differs from the uninterrupted run\nresumed: %s\nreference: %s", got, refJSON)
	}

	// Invariant 3 — journal salvage: whatever the crash left behind,
	// the salvaged prefix is well-formed and gap-free.
	recs, _, jrerr := obs.RecoverJournal(nil, journalPath)
	if jrerr != nil {
		if !errors.Is(jrerr, fs.ErrNotExist) {
			t.Errorf("journal salvage: %v", jrerr)
		}
		return
	}
	for i, rec := range recs {
		if rec.Type == "" {
			t.Errorf("salvaged record %d has no type: %+v", i, rec)
		}
		if rec.Seq != int64(i) {
			t.Errorf("salvaged journal has a sequence gap at %d: %+v", i, rec)
		}
	}
}

// TestCrashSweepFaultLabels pins the sweep's subtest naming so CI
// failures name the exact failpoint ("dropsync@sync#3", ...).
func TestCrashSweepFaultLabels(t *testing.T) {
	f := faultfs.Fault{Op: faultfs.OpSync, Nth: 3, Mode: faultfs.ModeDropSync}
	if got := f.String(); got != "dropsync@sync#3" {
		t.Fatalf("fault label = %q", got)
	}
	if got := fmt.Sprintf("%v", faultfs.OpCreateTemp); got != "createtemp" {
		t.Fatalf("op label = %q", got)
	}
}
