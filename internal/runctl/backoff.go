package runctl

import (
	"context"
	"math/rand"
	"time"
)

// Backoff is the shared retry-delay policy: exponential growth with an
// optional jitter fraction, a per-delay cap, and context-aware waiting.
// The zero value is deterministic (no jitter) and starts at 50ms
// doubling per attempt — the schedule Store save retries have always
// used. Network clients (the fleet job client) opt into jitter so a
// fleet of retriers does not synchronize against a recovering server.
//
// Backoff is a value type: copies are independent and a Backoff carries
// no mutable state, so one policy can be shared by many goroutines.
type Backoff struct {
	// Base is the delay before the first retry (0 = 50ms).
	Base time.Duration
	// Max caps each computed delay before jitter (0 = 5s). An explicit
	// floor passed to WaitAtLeast — e.g. a server's Retry-After — may
	// still exceed it.
	Max time.Duration
	// Factor is the per-attempt growth multiplier (0 = 2).
	Factor float64
	// Jitter in [0,1] is the fraction of each delay that is randomized:
	// the waited delay is uniform in [d·(1-Jitter), d]. 0 = exact.
	Jitter float64
	// Rand is the jitter source in [0,1) (nil = math/rand; tests pin it).
	Rand func() float64
	// Sleep replaces the context-aware wait (tests record the schedule);
	// nil = real timer. Wait still reports ctx.Err() after Sleep returns.
	Sleep func(time.Duration)
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 50 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 5 * time.Second
	}
	return b.Max
}

func (b Backoff) factor() float64 {
	if b.Factor <= 0 {
		return 2
	}
	return b.Factor
}

// Delay computes the (jittered) delay before retry number attempt,
// counted from 0: Delay(0) is the pause after the first failure.
func (b Backoff) Delay(attempt int) time.Duration {
	d, max, factor := float64(b.base()), float64(b.max()), b.factor()
	for i := 0; i < attempt && d < max; i++ {
		d *= factor
	}
	if d > max {
		d = max
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		rnd := b.Rand
		if rnd == nil {
			rnd = rand.Float64
		}
		d = d*(1-j) + d*j*rnd()
	}
	return time.Duration(d)
}

// Wait blocks for Delay(attempt) or until ctx is done, whichever comes
// first, and returns ctx.Err() when the context cut the wait short.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	return b.pause(ctx, b.Delay(attempt))
}

// WaitAtLeast is Wait with an explicit lower bound on the delay: a
// server-supplied Retry-After hint overrides a shorter computed backoff
// (and the Max cap) but never shortens a longer one.
func (b Backoff) WaitAtLeast(ctx context.Context, attempt int, floor time.Duration) error {
	d := b.Delay(attempt)
	if floor > d {
		d = floor
	}
	return b.pause(ctx, d)
}

func (b Backoff) pause(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if b.Sleep != nil {
		b.Sleep(d)
		return ctx.Err()
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
