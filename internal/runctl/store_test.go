package runctl

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bbc/internal/faultfs"
)

type testPayload struct {
	Cursor  []int  `json:"cursor"`
	Checked uint64 `json:"checked"`
}

func testCheckpoint(t *testing.T, checked uint64) *Checkpoint {
	t.Helper()
	c, err := NewCheckpoint("enumeration", "fp-test", StatusBudget,
		map[string]int64{"core.profiles_checked": int64(checked)},
		&testPayload{Cursor: []int{1, 2, 3}, Checked: checked})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStoreSaveLoadRoundTrip: a v2 save carries a checksum and loads
// back identically through the recovering loader.
func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := &Store{Path: filepath.Join(t.TempDir(), "run.ckpt")}
	if err := s.Save(testCheckpoint(t, 42)); err != nil {
		t.Fatal(err)
	}
	c, rec, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fallback || rec.Quarantined != "" || rec.Path != s.Path {
		t.Fatalf("clean load should not recover: %+v", rec)
	}
	if c.Version != CheckpointVersion || c.Checksum == "" {
		t.Fatalf("want v%d with checksum, got v%d %q", CheckpointVersion, c.Version, c.Checksum)
	}
	var p testPayload
	if err := c.Decode("enumeration", "fp-test", &p); err != nil {
		t.Fatal(err)
	}
	if p.Checked != 42 {
		t.Fatalf("payload checked = %d, want 42", p.Checked)
	}
}

// TestV1CheckpointStillLoads pins backward compatibility: a version-1
// envelope written by the previous build (no checksum field) loads and
// decodes under the v2 reader.
func TestV1CheckpointStillLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.ckpt")
	v1 := `{
  "version": 1,
  "kind": "enumeration",
  "fingerprint": "fp-old",
  "status": "deadline",
  "counters": { "core.profiles_checked": 7 },
  "payload": { "cursor": [0, 1], "checked": 7 }
}
`
	if err := os.WriteFile(path, []byte(v1), 0o600); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatalf("v1 checkpoint must still load: %v", err)
	}
	var p testPayload
	if err := c.Decode("enumeration", "fp-old", &p); err != nil {
		t.Fatal(err)
	}
	if p.Checked != 7 || c.Status != StatusDeadline {
		t.Fatalf("v1 decode: %+v status %v", p, c.Status)
	}
}

// TestChecksumDetectsBitFlip: flipping one byte inside the payload of a
// valid v2 file is caught by the checksum, not by the JSON parser.
func TestChecksumDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := &Store{Path: filepath.Join(dir, "run.ckpt")}
	if err := s.Save(testCheckpoint(t, 9)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the payload so the file stays valid JSON.
	flipped := strings.Replace(string(data), `"checked": 9`, `"checked": 8`, 1)
	if flipped == string(data) {
		t.Fatal("fixture: payload digit not found")
	}
	if err := os.WriteFile(s.Path, []byte(flipped), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = Load(s.Path)
	if !IsCorrupt(err) || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("want checksum-mismatch corruption, got %v", err)
	}
}

// TestStoreRotationKeepsPrev: the second save preserves the first
// snapshot as .prev.
func TestStoreRotationKeepsPrev(t *testing.T) {
	s := &Store{Path: filepath.Join(t.TempDir(), "run.ckpt")}
	if err := s.Save(testCheckpoint(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testCheckpoint(t, 2)); err != nil {
		t.Fatal(err)
	}
	cur, err := Load(s.Path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Load(s.PrevPath())
	if err != nil {
		t.Fatalf("previous generation must survive rotation: %v", err)
	}
	var pc, pp testPayload
	if err := cur.Decode("enumeration", "", &pc); err != nil {
		t.Fatal(err)
	}
	if err := prev.Decode("enumeration", "", &pp); err != nil {
		t.Fatal(err)
	}
	if pc.Checked != 2 || pp.Checked != 1 {
		t.Fatalf("generations: cur=%d prev=%d, want 2/1", pc.Checked, pp.Checked)
	}
}

// TestStoreQuarantineAndFallback: a corrupted primary is moved to
// .corrupt and the previous generation is loaded instead.
func TestStoreQuarantineAndFallback(t *testing.T) {
	s := &Store{Path: filepath.Join(t.TempDir(), "run.ckpt")}
	if err := s.Save(testCheckpoint(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testCheckpoint(t, 2)); err != nil {
		t.Fatal(err)
	}
	// Tear the primary mid-file.
	data, _ := os.ReadFile(s.Path)
	if err := os.WriteFile(s.Path, data[:len(data)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	c, rec, err := s.Load()
	if err != nil {
		t.Fatalf("fallback load must succeed: %v", err)
	}
	if !rec.Fallback || rec.Path != s.PrevPath() || rec.Quarantined != s.CorruptPath() {
		t.Fatalf("recovery = %+v", rec)
	}
	if !IsCorrupt(rec.Err) {
		t.Fatalf("recovery cause should be corruption, got %v", rec.Err)
	}
	var p testPayload
	if err := c.Decode("enumeration", "", &p); err != nil {
		t.Fatal(err)
	}
	if p.Checked != 1 {
		t.Fatalf("fallback loaded checked=%d, want the previous generation (1)", p.Checked)
	}
	if _, err := os.Stat(s.CorruptPath()); err != nil {
		t.Fatalf("corrupt primary must be quarantined: %v", err)
	}
}

// TestStoreNoGenerationLoadable: with both generations corrupt the
// error is a plain-language diagnosis, not a raw JSON error.
func TestStoreNoGenerationLoadable(t *testing.T) {
	s := &Store{Path: filepath.Join(t.TempDir(), "run.ckpt")}
	if err := os.WriteFile(s.Path, []byte("{torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.PrevPath(), []byte("also torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Load()
	if err == nil {
		t.Fatal("want an error with no loadable generation")
	}
	if !IsCorrupt(err) {
		t.Fatalf("want corruption classification, got %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"quarantined", "previous generation", "restore a snapshot"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnosis %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "invalid character '{'") && !strings.Contains(msg, "corrupt") {
		t.Errorf("diagnosis leads with a raw JSON error: %q", msg)
	}
}

// TestStoreMissingIsNotCorrupt: resuming from a path that simply does
// not exist is a missing-file error, not corruption.
func TestStoreMissingIsNotCorrupt(t *testing.T) {
	s := &Store{Path: filepath.Join(t.TempDir(), "nope.ckpt")}
	_, _, err := s.Load()
	if err == nil || IsCorrupt(err) {
		t.Fatalf("want plain not-found error, got %v", err)
	}
	if !strings.Contains(err.Error(), "no checkpoint found") {
		t.Errorf("unhelpful not-found message: %v", err)
	}
}

// TestStoreRetryBackoff: a transient save fault that outlasts one
// attempt is absorbed by bounded retry with doubling backoff.
func TestStoreRetryBackoff(t *testing.T) {
	var slept []time.Duration
	inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpWrite, Nth: 1, Mode: faultfs.ModeENOSPC, Times: 2})
	s := &Store{
		Path:    filepath.Join(t.TempDir(), "run.ckpt"),
		FS:      inj,
		Retries: 3,
		Retry: Backoff{
			Base:  10 * time.Millisecond,
			Sleep: func(d time.Duration) { slept = append(slept, d) },
		},
	}
	if err := s.Save(testCheckpoint(t, 5)); err != nil {
		t.Fatalf("retries should absorb a 2-shot transient fault: %v", err)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule = %v, want [10ms 20ms]", slept)
	}
	if _, _, err := s.Load(); err != nil {
		t.Fatalf("saved checkpoint must load: %v", err)
	}
}

// TestStoreRetryExhaustion: a persistent fault eventually surfaces with
// the underlying cause intact.
func TestStoreRetryExhaustion(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{Op: faultfs.OpCreateTemp, Nth: 1, Mode: faultfs.ModeFail, Times: 100})
	s := &Store{
		Path:    filepath.Join(t.TempDir(), "run.ckpt"),
		FS:      inj,
		Retries: 2,
		Retry:   Backoff{Sleep: func(time.Duration) {}},
	}
	err := s.Save(testCheckpoint(t, 5))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("want the injected cause in the chain, got %v", err)
	}
	if inj.Fired() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", inj.Fired())
	}
}

// TestStoreTornPrimaryNeverDisplacesGoodPrev: saving over a torn
// primary quarantines it instead of rotating it into .prev.
func TestStoreTornPrimaryNeverDisplacesGoodPrev(t *testing.T) {
	s := &Store{Path: filepath.Join(t.TempDir(), "run.ckpt")}
	if err := s.Save(testCheckpoint(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testCheckpoint(t, 2)); err != nil {
		t.Fatal(err)
	}
	// Tear the primary (as a crashed dropped-fsync publish would).
	if err := os.WriteFile(s.Path, []byte(`{"version":2,"kind":"enum`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testCheckpoint(t, 3)); err != nil {
		t.Fatal(err)
	}
	prev, err := Load(s.PrevPath())
	if err != nil {
		t.Fatalf(".prev must stay loadable: %v", err)
	}
	var p testPayload
	if err := prev.Decode("enumeration", "", &p); err != nil {
		t.Fatal(err)
	}
	if p.Checked != 1 {
		t.Fatalf(".prev = %d, want the last good generation before the tear (1)", p.Checked)
	}
	if _, err := os.Stat(s.CorruptPath()); err != nil {
		t.Fatalf("torn primary must land in quarantine: %v", err)
	}
	cur, err := Load(s.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Decode("enumeration", "", &p); err != nil {
		t.Fatal(err)
	}
	if p.Checked != 3 {
		t.Fatalf("primary = %d, want 3", p.Checked)
	}
}
