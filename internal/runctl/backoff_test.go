package runctl

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffDelaySchedule: the zero value reproduces the historical
// store schedule (50ms doubling), and Base/Factor/Max shape it.
func TestBackoffDelaySchedule(t *testing.T) {
	var b Backoff
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("zero-value Delay(%d) = %v, want %v", i, got, w)
		}
	}
	b = Backoff{Base: 10 * time.Millisecond, Factor: 3, Max: 50 * time.Millisecond}
	want = []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// A huge attempt number must not overflow past the cap.
	if got := b.Delay(10_000); got != 50*time.Millisecond {
		t.Errorf("Delay(10000) = %v, want the 50ms cap", got)
	}
}

// TestBackoffJitterBounds: jittered delays stay within
// [d·(1-Jitter), d] and follow the pinned Rand source.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 50*time.Millisecond {
		t.Errorf("Rand=0 Delay = %v, want 50ms (the lower bound)", got)
	}
	b.Rand = func() float64 { return 1 }
	if got := b.Delay(0); got != 100*time.Millisecond {
		t.Errorf("Rand=1 Delay = %v, want 100ms (the full delay)", got)
	}
	b.Rand = func() float64 { return 0.5 }
	if got := b.Delay(0); got != 75*time.Millisecond {
		t.Errorf("Rand=0.5 Delay = %v, want 75ms", got)
	}
}

// TestBackoffWaitContext: a cancelled context cuts the wait short and
// surfaces the context error.
func TestBackoffWaitContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour}
	start := time.Now()
	if err := b.Wait(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("Wait ignored the cancelled context")
	}
	// A live context waits the full (tiny) delay and returns nil.
	if err := (Backoff{Base: time.Millisecond}).Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

// TestBackoffWaitAtLeast: a server Retry-After floor overrides a
// shorter computed delay but never shortens a longer one.
func TestBackoffWaitAtLeast(t *testing.T) {
	var slept []time.Duration
	b := Backoff{Base: 10 * time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	if err := b.WaitAtLeast(context.Background(), 0, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitAtLeast(context.Background(), 3, 40*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{40 * time.Millisecond, 80 * time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("WaitAtLeast schedule = %v, want %v", slept, want)
	}
}
