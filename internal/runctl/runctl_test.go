package runctl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStatusNamesAndJSON(t *testing.T) {
	for s, want := range map[Status]string{
		StatusComplete:  "complete",
		StatusCancelled: "cancelled",
		StatusDeadline:  "deadline",
		StatusBudget:    "budget",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != `"`+want+`"` {
			t.Errorf("marshal %v = %s", s, data)
		}
		var back Status
		if err := json.Unmarshal(data, &back); err != nil || back != s {
			t.Errorf("unmarshal %s = %v, %v", data, back, err)
		}
	}
	var bad Status
	if err := json.Unmarshal([]byte(`"sideways"`), &bad); err == nil {
		t.Error("expected error for unknown status name")
	}
}

func TestStatusFromError(t *testing.T) {
	if got := StatusFromError(nil); got != StatusComplete {
		t.Errorf("nil -> %v", got)
	}
	if got := StatusFromError(fmt.Errorf("wrap: %w", ErrBudget)); got != StatusBudget {
		t.Errorf("ErrBudget -> %v", got)
	}
	if got := StatusFromError(context.DeadlineExceeded); got != StatusDeadline {
		t.Errorf("deadline -> %v", got)
	}
	if got := StatusFromError(context.Canceled); got != StatusCancelled {
		t.Errorf("canceled -> %v", got)
	}
	if got := StatusFromError(errors.New("boom")); got != StatusCancelled {
		t.Errorf("unknown -> %v", got)
	}
}

func TestStatusMerge(t *testing.T) {
	if got := Merge(StatusComplete, StatusComplete); got != StatusComplete {
		t.Errorf("complete+complete = %v", got)
	}
	if got := Merge(StatusBudget, StatusCancelled); got != StatusCancelled {
		t.Errorf("budget+cancelled = %v", got)
	}
	if got := Merge(StatusDeadline, StatusBudget); got != StatusDeadline {
		t.Errorf("deadline+budget = %v", got)
	}
	if got := Merge(StatusComplete, StatusBudget); got != StatusBudget {
		t.Errorf("complete+budget = %v", got)
	}
}

func TestPollerObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoller(ctx, 8)
	for i := 0; i < 20; i++ {
		if err := p.Check(); err != nil {
			t.Fatalf("premature stop at iteration %d: %v", i, err)
		}
	}
	cancel()
	var stopped bool
	for i := 0; i < 16; i++ { // must notice within one polling period
		if p.Check() != nil {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Fatal("poller never observed the cancelled context")
	}
	if p.Check() == nil {
		t.Fatal("poller error must be sticky")
	}
}

func TestPollerNilContextNeverStops(t *testing.T) {
	p := NewPoller(nil, 1)
	for i := 0; i < 100; i++ {
		if err := p.Check(); err != nil {
			t.Fatalf("nil-context poller stopped: %v", err)
		}
	}
}

func TestPollerChecksFirstIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPoller(ctx, 1_000_000)
	if err := p.Check(); err == nil {
		t.Fatal("an already-cancelled context must stop the first check")
	}
}

func TestCheckpointSaveLoadRoundtrip(t *testing.T) {
	type payload struct {
		Cursor  []int    `json:"cursor"`
		Checked uint64   `json:"checked"`
		Found   []string `json:"found"`
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	in := payload{Cursor: []int{3, 0, 7}, Checked: 12345, Found: []string{"a", "b"}}
	cp, err := NewCheckpoint("enumeration", "fp-1", StatusCancelled, map[string]int64{"core.profiles_checked": 12345}, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want 1", len(entries))
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "enumeration" || got.Status != StatusCancelled || got.Counters["core.profiles_checked"] != 12345 {
		t.Fatalf("envelope mismatch: %+v", got)
	}
	var out payload
	if err := got.Decode("enumeration", "fp-1", &out); err != nil {
		t.Fatal(err)
	}
	if out.Checked != in.Checked || len(out.Cursor) != 3 || out.Cursor[2] != 7 {
		t.Fatalf("payload mismatch: %+v", out)
	}
}

func TestCheckpointDecodeValidation(t *testing.T) {
	cp, err := NewCheckpoint("enumeration", "fp-1", StatusComplete, nil, map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := cp.Decode("ensemble", "fp-1", &out); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("wrong kind accepted: %v", err)
	}
	if err := cp.Decode("enumeration", "fp-2", &out); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("wrong fingerprint accepted: %v", err)
	}
	if err := cp.Decode("enumeration", "", &out); err != nil {
		t.Errorf("empty expected fingerprint must skip the check: %v", err)
	}
	cp.Version = 99
	if err := cp.Decode("enumeration", "fp-1", &out); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version accepted: %v", err)
	}
}

func TestCheckpointLoadRejectsGarbageAndWrongVersion(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("garbage checkpoint loaded without error")
	}
	v9 := filepath.Join(dir, "v9.ckpt")
	if err := os.WriteFile(v9, []byte(`{"version":9,"kind":"enumeration","payload":{}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(v9); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing checkpoint loaded without error")
	}
}

func TestCheckpointSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	for i := 0; i < 3; i++ {
		cp, err := NewCheckpoint("enumeration", "fp", StatusBudget, nil, map[string]int{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		if err := Save(path, cp); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := got.Decode("enumeration", "fp", &out); err != nil {
		t.Fatal(err)
	}
	if out["i"] != 2 {
		t.Fatalf("latest save not visible: %+v", out)
	}
}

func TestGuardPassesThroughAndRecovers(t *testing.T) {
	if err := Guard("unit", func() error { return nil }); err != nil {
		t.Fatalf("clean fn: %v", err)
	}
	want := errors.New("plain failure")
	if err := Guard("unit", func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("error fn: %v", err)
	}
	err := Guard("enumeration partition 17", func() error { panic("index out of range") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not converted: %v", err)
	}
	if !strings.Contains(pe.Error(), "partition 17") || !strings.Contains(pe.Error(), "index out of range") {
		t.Errorf("panic error lacks context: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error lacks a stack")
	}
}

func TestExitCodes(t *testing.T) {
	if ExitCode(StatusComplete) != ExitOK {
		t.Error("complete must exit 0")
	}
	if ExitCode(StatusBudget) != ExitBudget || ExitCode(StatusDeadline) != ExitBudget {
		t.Error("budget/deadline must share the budget exit code")
	}
	if ExitCode(StatusCancelled) != ExitInterrupted {
		t.Error("cancelled must use the interrupted exit code")
	}
}

func TestWithDeadline(t *testing.T) {
	parent := context.Background()
	ctx, cancel := WithDeadline(parent, 0)
	defer cancel()
	if ctx != parent {
		t.Error("zero timeout must return the parent unchanged")
	}
	ctx, cancel = WithDeadline(parent, time.Millisecond)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("positive timeout must set a deadline")
	}
}

func TestSignalContextStopIsIdempotent(t *testing.T) {
	ctx, signalled, stop := SignalContext(context.Background())
	if signalled() != nil {
		t.Error("no signal yet")
	}
	stop()
	stop() // must not panic or double-close
	<-ctx.Done()
}
