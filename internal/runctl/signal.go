package runctl

import (
	"context"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"
)

// Distinct process exit codes for the bbc CLIs. 0/1/2 keep their POSIX
// and package-flag meanings; partial-result exits get their own codes so
// scripts and CI can distinguish "interrupted but flushed" from "failed".
const (
	// ExitOK: the run completed.
	ExitOK = 0
	// ExitError: the run failed (bad input, I/O error, internal error).
	ExitError = 1
	// ExitUsage: flag parsing failed (package flag exits with 2).
	ExitUsage = 2
	// ExitBudget: a -timeout / -max-profiles / -max-steps budget truncated
	// the run; partial results were reported.
	ExitBudget = 3
	// ExitCorrupt: durable state (a checkpoint, a journal) is corrupt and
	// no generation was recoverable; the offending file was quarantined
	// where possible. Scripts can distinguish "restore a snapshot" from
	// generic failure.
	ExitCorrupt = 4
	// ExitInterrupted: SIGINT/SIGTERM stopped the run; partial results and
	// (when enabled) a checkpoint were flushed before exit.
	ExitInterrupted = 130
)

// ExitCode maps a final run status to the CLI exit code.
func ExitCode(s Status) int {
	switch s {
	case StatusComplete:
		return ExitOK
	case StatusBudget, StatusDeadline:
		return ExitBudget
	default:
		return ExitInterrupted
	}
}

// ExitCodeForError maps a fatal CLI error to its exit code: corrupt
// durable state gets ExitCorrupt, everything else ExitError.
func ExitCodeForError(err error) int {
	if IsCorrupt(err) {
		return ExitCorrupt
	}
	return ExitError
}

// SignalContext derives a context that is cancelled on SIGINT or
// SIGTERM, recording the first signal received. A second signal while
// the first is still being handled force-exits with ExitInterrupted, so
// a wedged teardown never traps the user. stop releases the signal
// handler (restoring default delivery) and must be called on all paths.
func SignalContext(parent context.Context) (ctx context.Context, signalled func() os.Signal, stop func()) {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	var got atomic.Value // os.Signal
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			got.Store(sig)
			cancel()
			select {
			case <-ch: // second signal: the user really means it
				os.Exit(ExitInterrupted)
			case <-done:
			}
		case <-done:
		}
	}()
	var closed atomic.Bool
	stop = func() {
		if closed.CompareAndSwap(false, true) {
			signal.Stop(ch)
			cancel()
			close(done)
		}
	}
	signalled = func() os.Signal {
		sig, _ := got.Load().(os.Signal)
		return sig
	}
	return ctx, signalled, stop
}

// WithDeadline applies an optional timeout on top of parent: a
// non-positive d returns the parent unchanged with a no-op cancel, so
// CLI code can apply -timeout unconditionally.
func WithDeadline(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, d)
}
