package runctl

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CheckpointVersion is the current snapshot schema version. Loaders
// reject other versions explicitly instead of misreading them.
const CheckpointVersion = 1

// Checkpoint is the versioned envelope of a run snapshot. Kind names the
// payload schema ("enumeration", "ensemble", "suite", ...), and Payload
// holds the kind-specific state (search-space cursor, equilibria found,
// trial outcomes, RNG seed, counter deltas) marshaled by the producer.
type Checkpoint struct {
	// Version is the envelope schema version (CheckpointVersion).
	Version int `json:"version"`
	// Kind names the payload schema.
	Kind string `json:"kind"`
	// Fingerprint ties the snapshot to the run configuration that
	// produced it (spec shape, seed, flags); resuming under a different
	// fingerprint is refused rather than silently producing garbage.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Status records how the producing run had ended at save time
	// (usually cancelled/deadline for an interrupt snapshot).
	Status Status `json:"status"`
	// Counters carries the producing run's observability counter
	// snapshot, so resumed runs can report cumulative work.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Payload is the kind-specific resume state.
	Payload json.RawMessage `json:"payload"`
}

// NewCheckpoint wraps a payload value into a versioned envelope.
func NewCheckpoint(kind, fingerprint string, status Status, counters map[string]int64, payload any) (*Checkpoint, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("runctl: marshal %s checkpoint payload: %w", kind, err)
	}
	return &Checkpoint{
		Version:     CheckpointVersion,
		Kind:        kind,
		Fingerprint: fingerprint,
		Status:      status,
		Counters:    counters,
		Payload:     raw,
	}, nil
}

// Decode unmarshals the payload into out after validating version, kind
// and fingerprint, so a resume from the wrong snapshot fails loudly.
func (c *Checkpoint) Decode(kind, fingerprint string, out any) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("runctl: checkpoint version %d, want %d", c.Version, CheckpointVersion)
	}
	if c.Kind != kind {
		return fmt.Errorf("runctl: checkpoint kind %q, want %q", c.Kind, kind)
	}
	if fingerprint != "" && c.Fingerprint != fingerprint {
		return fmt.Errorf("runctl: checkpoint was taken for a different run (fingerprint %q, want %q)", c.Fingerprint, fingerprint)
	}
	if err := json.Unmarshal(c.Payload, out); err != nil {
		return fmt.Errorf("runctl: decode %s checkpoint payload: %w", kind, err)
	}
	return nil
}

// Save writes the checkpoint atomically: marshal to a temp file in the
// destination directory, fsync, then rename over the target, so a crash
// mid-write leaves either the previous snapshot or the new one, never a
// torn file.
func Save(path string, c *Checkpoint) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("runctl: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("runctl: create checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runctl: close checkpoint temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("runctl: publish checkpoint: %w", err)
	}
	return nil
}

// Load reads and validates a checkpoint envelope from path. The payload
// stays raw; call Decode with the expected kind to unpack it.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runctl: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("runctl: parse checkpoint %s: %w", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("runctl: checkpoint %s has version %d, this build reads %d", path, c.Version, CheckpointVersion)
	}
	return &c, nil
}
