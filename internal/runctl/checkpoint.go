package runctl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"bbc/internal/faultfs"
)

// CheckpointVersion is the current snapshot schema version. Version 2
// added the integrity checksum; version-1 snapshots (no checksum) are
// still readable, and loaders reject versions this build does not know
// explicitly instead of misreading them.
const CheckpointVersion = 2

// minCheckpointVersion is the oldest schema this build still reads.
const minCheckpointVersion = 1

// Checkpoint is the versioned envelope of a run snapshot. Kind names the
// payload schema ("enumeration", "ensemble", "suite", "sweep-grid", ...,
// each owned by the producing package), and Payload
// holds the kind-specific state (search-space cursor, equilibria found,
// trial outcomes, RNG seed, counter deltas) marshaled by the producer.
type Checkpoint struct {
	// Version is the envelope schema version (CheckpointVersion).
	Version int `json:"version"`
	// Kind names the payload schema.
	Kind string `json:"kind"`
	// Fingerprint ties the snapshot to the run configuration that
	// produced it (spec shape, seed, flags); resuming under a different
	// fingerprint is refused rather than silently producing garbage.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Status records how the producing run had ended at save time
	// (usually cancelled/deadline for an interrupt snapshot).
	Status Status `json:"status"`
	// Counters carries the producing run's observability counter
	// snapshot, so resumed runs can report cumulative work.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Checksum is the crc32c integrity tag over the identifying fields
	// and the payload (schema v2+); a snapshot whose stored and computed
	// tags disagree is corrupt and must not be resumed from.
	Checksum string `json:"checksum,omitempty"`
	// Payload is the kind-specific resume state.
	Payload json.RawMessage `json:"payload"`
}

// NewCheckpoint wraps a payload value into a versioned, checksummed
// envelope.
func NewCheckpoint(kind, fingerprint string, status Status, counters map[string]int64, payload any) (*Checkpoint, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("runctl: marshal %s checkpoint payload: %w", kind, err)
	}
	c := &Checkpoint{
		Version:     CheckpointVersion,
		Kind:        kind,
		Fingerprint: fingerprint,
		Status:      status,
		Counters:    counters,
		Payload:     raw,
	}
	c.Checksum = c.checksum()
	return c, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the crc32c integrity tag over the envelope's
// identifying fields, counters and payload. The payload is compacted
// first so the tag is independent of on-disk indentation.
func (c *Checkpoint) checksum() string {
	h := crc32.New(castagnoli)
	fmt.Fprintf(h, "v%d|%s|%s|%s|", c.Version, c.Kind, c.Fingerprint, c.Status)
	keys := make([]string, 0, len(c.Counters))
	for k := range c.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d|", k, c.Counters[k])
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, c.Payload); err != nil {
		// Non-JSON payload bytes cannot round-trip anyway; tag them raw so
		// the mismatch is still deterministic.
		h.Write(c.Payload)
	} else {
		h.Write(buf.Bytes())
	}
	return fmt.Sprintf("crc32c:%08x", h.Sum32())
}

// CorruptError marks durable state that exists but cannot be trusted: a
// torn or bit-rotted checkpoint, a checksum mismatch, an envelope
// missing required fields. It is distinct from version/kind/fingerprint
// mismatches (valid files from a different run) and from missing files.
type CorruptError struct {
	// Path is the offending file ("" when parsing raw bytes).
	Path string
	// Reason says what integrity property failed, in plain language.
	Reason string
	// Err optionally carries the underlying decode error.
	Err error
}

// Error renders a plain-language description, never a bare JSON error.
func (e *CorruptError) Error() string {
	msg := "runctl: checkpoint"
	if e.Path != "" {
		msg += " " + e.Path
	}
	msg += " is corrupt: " + e.Reason
	if e.Err != nil {
		msg += fmt.Sprintf(" (%v)", e.Err)
	}
	return msg
}

// Unwrap exposes the underlying decode error to errors.Is/As.
func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err stems from corrupt durable state (as
// opposed to a missing file or a config mismatch).
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Parse decodes and integrity-checks a checkpoint envelope from raw
// bytes. Torn, truncated or bit-flipped inputs return a *CorruptError;
// a valid envelope from a future schema returns a plain version error.
func Parse(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, &CorruptError{Reason: "not a valid checkpoint envelope", Err: err}
	}
	if c.Version < minCheckpointVersion || c.Version > CheckpointVersion {
		return nil, fmt.Errorf("runctl: checkpoint has version %d, this build reads %d..%d",
			c.Version, minCheckpointVersion, CheckpointVersion)
	}
	if c.Kind == "" {
		return nil, &CorruptError{Reason: "envelope has no kind"}
	}
	if len(c.Payload) == 0 {
		return nil, &CorruptError{Reason: "envelope has no payload"}
	}
	if c.Version >= 2 {
		if c.Checksum == "" {
			return nil, &CorruptError{Reason: "v2 envelope has no checksum"}
		}
		if got := c.checksum(); got != c.Checksum {
			return nil, &CorruptError{Reason: fmt.Sprintf("checksum mismatch: file says %s, contents hash to %s", c.Checksum, got)}
		}
	}
	return &c, nil
}

// Decode unmarshals the payload into out after validating kind and
// fingerprint, so a resume from the wrong snapshot fails loudly.
func (c *Checkpoint) Decode(kind, fingerprint string, out any) error {
	if c.Version < minCheckpointVersion || c.Version > CheckpointVersion {
		return fmt.Errorf("runctl: checkpoint version %d, want %d..%d", c.Version, minCheckpointVersion, CheckpointVersion)
	}
	if c.Kind != kind {
		return fmt.Errorf("runctl: checkpoint kind %q, want %q", c.Kind, kind)
	}
	if fingerprint != "" && c.Fingerprint != fingerprint {
		return fmt.Errorf("runctl: checkpoint was taken for a different run (fingerprint %q, want %q)", c.Fingerprint, fingerprint)
	}
	if err := json.Unmarshal(c.Payload, out); err != nil {
		return fmt.Errorf("runctl: decode %s checkpoint payload: %w", kind, err)
	}
	return nil
}

// Save writes the checkpoint atomically with generation rotation (see
// Store.Save) on the real filesystem.
func Save(path string, c *Checkpoint) error {
	return (&Store{Path: path}).Save(c)
}

// Load reads and validates a checkpoint envelope from path on the real
// filesystem, with no generation fallback; use Store.Load for the
// recovering loader. The payload stays raw; call Decode with the
// expected kind to unpack it.
func Load(path string) (*Checkpoint, error) {
	return loadFile(faultfs.OS{}, path)
}

// loadFile reads and parses one checkpoint file, attaching the path to
// corruption errors.
func loadFile(fsys faultfs.FS, path string) (*Checkpoint, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runctl: read checkpoint: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	return c, nil
}
