package runctl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"bbc/internal/faultfs"
)

// Store is the hardened checkpoint persistence policy: atomic
// write-fsync-rename saves with generation rotation (the last good
// snapshot survives as <path>.prev), bounded retry with exponential
// backoff for transient save errors, and a recovering loader that
// quarantines corrupt files to <path>.corrupt and falls back to the
// previous generation.
//
// The crash invariant the store maintains, fault-swept in
// crashsweep_test.go: whatever single filesystem operation fails — or
// whatever instant the process dies, even with a dropped fsync — the
// generation set {path, path.prev} always contains at least one complete
// snapshot, and it is either the previous or the new one, never a torn
// hybrid.
type Store struct {
	// Path is the primary snapshot location.
	Path string
	// FS is the filesystem to operate on (nil = the real OS).
	FS faultfs.FS
	// Retries is how many times a failed save is retried (0 = no
	// retries: one attempt total).
	Retries int
	// Retry is the delay policy between save attempts. The zero value
	// is the historical schedule: 50ms doubling per attempt, no jitter.
	Retry Backoff
}

// PrevPath is where the previous snapshot generation lives.
func (s *Store) PrevPath() string { return s.Path + ".prev" }

// CorruptPath is where a corrupt primary snapshot is quarantined.
func (s *Store) CorruptPath() string { return s.Path + ".corrupt" }

func (s *Store) fs() faultfs.FS { return faultfs.Or(s.FS) }

// Save persists the checkpoint with rotation and bounded retry. On
// success the new snapshot is at Path and the previously published good
// snapshot (if any) at PrevPath. A corrupt file already sitting at Path
// is quarantined rather than rotated, so it can never displace a good
// previous generation.
func (s *Store) Save(c *Checkpoint) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("runctl: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	for attempt := 0; ; attempt++ {
		err = s.saveOnce(data)
		if err == nil {
			return nil
		}
		if attempt >= s.Retries {
			return err
		}
		s.Retry.Wait(context.Background(), attempt) //nolint:errcheck // Background never cancels
	}
}

// saveOnce is one atomic save attempt: stage to a temp file in the
// destination directory, fsync, rotate the current good snapshot to
// .prev, then rename into place. A crash at any point leaves at least
// one complete generation on disk.
func (s *Store) saveOnce(data []byte) error {
	fsys := s.fs()
	dir := filepath.Dir(s.Path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(s.Path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("runctl: create checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) //nolint:errcheck // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runctl: close checkpoint temp: %w", err)
	}
	s.rotate(fsys)
	if err := fsys.Rename(tmpName, s.Path); err != nil {
		return fmt.Errorf("runctl: publish checkpoint: %w", err)
	}
	return nil
}

// rotate preserves the current snapshot as the previous generation —
// but only after verifying it parses: a torn file left by an earlier
// interrupted save is quarantined instead, so it never overwrites a
// good .prev. Rotation failures are not fatal to the save (the publish
// rename still replaces Path atomically); they only narrow the
// generation set.
func (s *Store) rotate(fsys faultfs.FS) {
	cur, err := fsys.ReadFile(s.Path)
	if err != nil {
		return // nothing at Path (first save), or unreadable: don't touch .prev
	}
	if _, perr := Parse(cur); perr != nil {
		fsys.Rename(s.Path, s.CorruptPath()) //nolint:errcheck
		return
	}
	fsys.Rename(s.Path, s.PrevPath()) //nolint:errcheck
}

// Recovery describes how a Load got its checkpoint: which generation
// was used, and whether the primary had to be quarantined.
type Recovery struct {
	// Path is the file the returned checkpoint was loaded from.
	Path string
	// Fallback is true when the previous generation was used.
	Fallback bool
	// Quarantined, when non-empty, is where the corrupt primary was
	// moved.
	Quarantined string
	// Err is why the primary was rejected (nil when it loaded cleanly).
	Err error
}

// TryLoad is Load for callers probing optional resume state: when no
// snapshot generation exists at all it returns (nil, nil, nil) instead of
// an error, so a service deciding "resume or start fresh" does not parse
// error chains. Corruption with no recoverable generation still errors.
func (s *Store) TryLoad() (*Checkpoint, *Recovery, error) {
	c, rec, err := s.Load()
	if err != nil && errors.Is(err, fs.ErrNotExist) && !IsCorrupt(err) {
		return nil, nil, nil
	}
	return c, rec, err
}

// Load reads the newest loadable snapshot generation. A corrupt primary
// is quarantined to CorruptPath and the previous generation is tried;
// the Recovery return says what happened so callers can journal it.
// When no generation is loadable the error is a plain-language
// diagnosis (wrapping *CorruptError when corruption was involved), not
// a raw decode error.
func (s *Store) Load() (*Checkpoint, *Recovery, error) {
	fsys := s.fs()
	c, err := loadFile(fsys, s.Path)
	if err == nil {
		return c, &Recovery{Path: s.Path}, nil
	}
	rec := &Recovery{Err: err}
	if IsCorrupt(err) {
		if qerr := fsys.Rename(s.Path, s.CorruptPath()); qerr == nil {
			rec.Quarantined = s.CorruptPath()
		}
	}
	prev, perr := loadFile(fsys, s.PrevPath())
	if perr == nil {
		rec.Path, rec.Fallback = s.PrevPath(), true
		return prev, rec, nil
	}
	// Nothing loadable: compose an actionable diagnosis.
	if errors.Is(err, fs.ErrNotExist) && errors.Is(perr, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("runctl: no checkpoint found at %s (and no previous generation at %s): %w", s.Path, s.PrevPath(), fs.ErrNotExist)
	}
	reason := fmt.Sprintf("primary snapshot unusable (%v)", err)
	if rec.Quarantined != "" {
		reason = fmt.Sprintf("primary snapshot quarantined to %s (%v)", rec.Quarantined, err)
	}
	return nil, nil, &CorruptError{
		Path:   s.Path,
		Reason: fmt.Sprintf("%s and the previous generation is not loadable (%v); restore a snapshot or delete the checkpoint files to start over", reason, perr),
	}
}
