package runctl

import (
	"fmt"
	"runtime/debug"
)

// PanicError carries a recovered worker panic out of a pool as an
// ordinary error naming the unit of work that blew up (partition,
// trial), so one poisoned input degrades a run instead of killing the
// process.
type PanicError struct {
	// Label names the failed work unit, e.g. "enumeration partition 17"
	// or "ensemble trial 3".
	Label string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error summarizes the panic; the stack is available via the struct for
// diagnostic output.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runctl: panic in %s: %v", e.Label, e.Value)
}

// Guard runs fn, converting a panic into a *PanicError wrapping label.
// Use it as the body of pool workers: a panic in one task surfaces as
// that task's error while the other workers keep draining the queue.
func Guard(label string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: label, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
