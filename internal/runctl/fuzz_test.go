package runctl

// Native fuzz target for the checkpoint envelope parser: checkpoint
// files are read back after crashes and may hold anything — torn JSON,
// bit rot, hand edits — so Parse must never panic, must classify
// corruption as *CorruptError, and must only accept envelopes whose
// checksum it can re-derive.

import (
	"encoding/json"
	"errors"
	"testing"
)

var parseSeeds = []string{
	// A well-formed v2 envelope (checksum filled in by the seed loop).
	"", // placeholder, replaced in FuzzCheckpointParse
	`{"version":1,"kind":"enumeration","status":"budget","payload":{"checked":42}}`,
	`{"version":2,"kind":"enumeration","checksum":"crc32c:00000000","status":"budget","payload":{"checked":42}}`,
	`{"version":99,"kind":"enumeration","payload":{}}`,
	`{"version":2,"kind":"","payload":{}}`,
	`{"version":2,"kind":"suite"}`,
	`{"version":2,`,
	`null`,
	`[]`,
	`{"version":-1,"kind":"x","payload":0}`,
}

func FuzzCheckpointParse(f *testing.F) {
	good, err := NewCheckpoint("enumeration", "enum-0123", StatusBudget,
		map[string]int64{"profiles_checked": 42}, map[string]any{"checked": 42})
	if err != nil {
		f.Fatal(err)
	}
	goodJSON, err := json.Marshal(good)
	if err != nil {
		f.Fatal(err)
	}
	parseSeeds[0] = string(goodJSON)
	for _, seed := range parseSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			// Corruption classification must be total: a corrupt error
			// carries a reason, and IsCorrupt agrees with the type.
			var ce *CorruptError
			if errors.As(err, &ce) {
				if ce.Reason == "" {
					t.Fatalf("corrupt error without a reason: %v", err)
				}
				if !IsCorrupt(err) {
					t.Fatalf("IsCorrupt disagrees with *CorruptError: %v", err)
				}
			}
			return
		}
		// Accepted envelopes uphold the parse contract.
		if c.Kind == "" || len(c.Payload) == 0 {
			t.Fatalf("accepted envelope missing kind or payload: %+v", c)
		}
		if c.Version < 1 || c.Version > CheckpointVersion {
			t.Fatalf("accepted envelope with version %d", c.Version)
		}
		if c.Version >= 2 && c.Checksum != c.checksum() {
			t.Fatalf("accepted v%d envelope with stale checksum %q", c.Version, c.Checksum)
		}
		// Accepted envelopes re-marshal and re-parse.
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted envelope does not marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("marshalled envelope does not re-parse: %v\n%s", err, out)
		}
	})
}
