// Package runctl is the run-control layer of the BBC solver stack:
// cancellation and deadline propagation for the long all-or-nothing scans
// (NE enumeration, best-response walks, ensembles, experiment suites),
// explicit work budgets with a distinct "budget exhausted" status,
// versioned atomic checkpoints for interrupt/resume, POSIX signal wiring
// for the CLIs, and panic containment for worker pools.
//
// The package sits below core/dynamics/exper (it depends only on the
// standard library) and encodes one contract: a long computation never
// dies with nothing. It either completes, or it stops at a bounded
// distance past a cancel/deadline/budget event with a Status explaining
// why, partial results intact, and — when checkpointing is on — a
// snapshot from which a resumed run reproduces the uninterrupted result
// byte-for-byte.
package runctl

import (
	"context"
	"errors"
	"fmt"
)

// Status classifies how a run ended. The zero value (StatusComplete)
// means the computation ran to completion; every other value is a
// graceful-degradation outcome carrying partial results.
type Status int

const (
	// StatusComplete: the whole computation finished.
	StatusComplete Status = iota
	// StatusCancelled: a context cancel (signal, parent teardown) stopped
	// the run.
	StatusCancelled
	// StatusDeadline: the context deadline (-timeout) expired.
	StatusDeadline
	// StatusBudget: an explicit work budget (-max-profiles, -max-steps,
	// max equilibria cap) was exhausted.
	StatusBudget
)

// statusNames are the stable external names used in JSON output, journal
// records and checkpoints. Renaming one is a schema change.
var statusNames = [...]string{
	StatusComplete:  "complete",
	StatusCancelled: "cancelled",
	StatusDeadline:  "deadline",
	StatusBudget:    "budget",
}

// String returns the status's stable external name.
func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("Status(%d)", int(s))
	}
	return statusNames[s]
}

// MarshalText makes Status serialize as its stable name in JSON.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stable status name.
func (s *Status) UnmarshalText(b []byte) error {
	for i, name := range statusNames {
		if name == string(b) {
			*s = Status(i)
			return nil
		}
	}
	return fmt.Errorf("runctl: unknown status %q", b)
}

// Complete reports whether the run finished the whole computation.
func (s Status) Complete() bool { return s == StatusComplete }

// ErrBudget is the sentinel cause for budget-exhausted stops, usable with
// errors.Is.
var ErrBudget = errors.New("runctl: work budget exhausted")

// StatusFromContext maps a context's error to a Status: nil → complete,
// Canceled → cancelled, DeadlineExceeded → deadline.
func StatusFromContext(ctx context.Context) Status {
	if ctx == nil {
		return StatusComplete
	}
	return StatusFromError(ctx.Err())
}

// StatusFromError classifies an error chain into a Status. Unrecognized
// non-nil errors map to StatusCancelled (the run did not complete and no
// budget was involved).
func StatusFromError(err error) Status {
	switch {
	case err == nil:
		return StatusComplete
	case errors.Is(err, ErrBudget):
		return StatusBudget
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline
	default:
		return StatusCancelled
	}
}

// Merge combines the statuses of two sub-computations into the status of
// their union: complete only when both completed, otherwise the
// most-urgent interruption (cancelled > deadline > budget) wins, so a
// signal is never misreported as a mere budget stop.
func Merge(a, b Status) Status {
	if a == b {
		return a
	}
	order := func(s Status) int {
		switch s {
		case StatusCancelled:
			return 3
		case StatusDeadline:
			return 2
		case StatusBudget:
			return 1
		default:
			return 0
		}
	}
	if order(a) >= order(b) {
		return a
	}
	return b
}

// CheckEvery is the default number of loop iterations (profiles, steps,
// trials) between context polls in instrumented hot loops: cheap enough
// to be invisible, frequent enough that cancellation latency is bounded
// by a few thousand stability checks.
const CheckEvery = 4096

// Poller amortizes context checks over a hot loop: Check returns the
// context's error at most once per Every iterations (and on the first
// call), so the loop pays one counter increment per iteration instead of
// an atomic context read. A zero/nil-context Poller never stops the loop.
type Poller struct {
	ctx   context.Context
	every uint64
	count uint64
	err   error
}

// NewPoller returns a poller checking ctx every `every` iterations
// (0 means CheckEvery). A nil ctx yields an inert poller.
func NewPoller(ctx context.Context, every uint64) *Poller {
	if every == 0 {
		every = CheckEvery
	}
	return &Poller{ctx: ctx, every: every}
}

// Check returns a non-nil error as soon as the context is done, observed
// at iteration granularity Every. Once non-nil, the same error is
// returned forever.
func (p *Poller) Check() error {
	if p.err != nil {
		return p.err
	}
	if p.ctx == nil {
		return nil
	}
	p.count++
	if p.count%p.every != 1 && p.every > 1 {
		return nil
	}
	p.err = p.ctx.Err()
	return p.err
}
