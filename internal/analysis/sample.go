package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"bbc/internal/core"
	"bbc/internal/dynamics"
)

// EquilibriumSample summarizes the equilibria reached by best-response
// dynamics from many random starts — an empirical view of the equilibrium
// landscape for games too large to enumerate, used to trace the
// PoA band of Theorem 4 at realistic sizes.
type EquilibriumSample struct {
	// Starts is the number of random starts attempted.
	Starts int
	// Reached is the number of walks that converged to an equilibrium.
	Reached int
	// Distinct is the number of structurally distinct equilibria seen.
	Distinct int
	// Costs holds the social costs of the reached equilibria, ascending.
	Costs []int64
}

// Best returns the cheapest sampled equilibrium cost (or 0 when none).
func (s *EquilibriumSample) Best() int64 {
	if len(s.Costs) == 0 {
		return 0
	}
	return s.Costs[0]
}

// Worst returns the most expensive sampled equilibrium cost.
func (s *EquilibriumSample) Worst() int64 {
	if len(s.Costs) == 0 {
		return 0
	}
	return s.Costs[len(s.Costs)-1]
}

// Spread returns worst/best as a float (0 when no equilibria sampled).
func (s *EquilibriumSample) Spread() float64 {
	if s.Best() == 0 {
		return 0
	}
	return float64(s.Worst()) / float64(s.Best())
}

// SampleEquilibria runs `starts` round-robin best-response walks of the
// (n,k)-uniform game from seeded random configurations and collects the
// equilibria they converge to. maxSteps bounds each walk (0 = 10·n²).
func SampleEquilibria(spec *core.Uniform, starts int, seed int64, maxSteps int) (*EquilibriumSample, error) {
	if starts <= 0 {
		return nil, fmt.Errorf("analysis: need at least one start")
	}
	n := spec.N()
	out := &EquilibriumSample{Starts: starts}
	distinct := make(map[string]bool)
	for i := 0; i < starts; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		start := dynamics.RandomStart(rng, n, spec.K())
		res, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(n), core.SumDistances,
			dynamics.Options{MaxSteps: maxSteps})
		if err != nil {
			return nil, err
		}
		if !res.Converged {
			continue
		}
		out.Reached++
		key := res.Final.Key()
		if !distinct[key] {
			distinct[key] = true
			out.Distinct++
		}
		out.Costs = append(out.Costs, core.SocialCost(spec, res.Final, core.SumDistances))
	}
	sort.Slice(out.Costs, func(i, j int) bool { return out.Costs[i] < out.Costs[j] })
	return out, nil
}
