package analysis

import (
	"testing"

	"bbc/internal/core"
)

func TestMeasureInfluenceStar(t *testing.T) {
	// Everyone links the hub (node 0); the hub links node 1. The hub is
	// the most popular; closeness is dominated by reachability.
	spec := core.MustUniform(5, 1)
	p := core.Profile{{1}, {0}, {0}, {0}, {0}}
	rep := MeasureInfluence(spec, p, core.SumDistances)
	if rep.InDegree[0] != 4 {
		t.Fatalf("hub in-degree = %d, want 4", rep.InDegree[0])
	}
	if rep.ByPopularity[0] != 0 {
		t.Fatalf("most popular = %d, want 0", rep.ByPopularity[0])
	}
	// Node 0 reaches only node 1; node 2 reaches 0 then 1: closeness
	// ranking must be consistent with the cost vector.
	for i := 1; i < len(rep.ByCloseness); i++ {
		a, b := rep.ByCloseness[i-1], rep.ByCloseness[i]
		if rep.Remoteness[a] > rep.Remoteness[b] {
			t.Fatal("ByCloseness not sorted by remoteness")
		}
	}
}

func TestMeasureInfluenceRingSymmetric(t *testing.T) {
	spec := core.MustUniform(6, 1)
	p := core.NewEmptyProfile(6)
	for u := 0; u < 6; u++ {
		p[u] = core.Strategy{(u + 1) % 6}
	}
	rep := MeasureInfluence(spec, p, core.SumDistances)
	for u := 0; u < 6; u++ {
		if rep.InDegree[u] != 1 {
			t.Fatalf("ring in-degree at %d = %d", u, rep.InDegree[u])
		}
		if rep.Remoteness[u] != rep.Remoteness[0] {
			t.Fatal("ring should be symmetric")
		}
	}
}

func TestTopK(t *testing.T) {
	ids := []int{4, 2, 7}
	if got := TopK(ids, 2); len(got) != 2 || got[0] != 4 {
		t.Fatalf("TopK = %v", got)
	}
	if got := TopK(ids, 9); len(got) != 3 {
		t.Fatalf("TopK overflow = %v", got)
	}
	// The copy must not alias the input.
	got := TopK(ids, 3)
	got[0] = 99
	if ids[0] == 99 {
		t.Fatal("TopK aliases its input")
	}
}
