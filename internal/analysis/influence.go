package analysis

import (
	"sort"

	"bbc/internal/core"
)

// InfluenceReport ranks nodes by the two natural influence notions in a
// BBC network: weighted closeness (low preference-weighted remoteness —
// the node's own game cost, i.e. how well it reaches who it cares about)
// and popularity (how many bought links point at it — being a target
// others pay for).
type InfluenceReport struct {
	// Remoteness[u] is u's game cost (lower = more central).
	Remoteness []int64
	// InDegree[u] counts bought links pointing at u.
	InDegree []int
	// ByCloseness lists node ids sorted by ascending remoteness (most
	// influential first), ties toward lower ids.
	ByCloseness []int
	// ByPopularity lists node ids sorted by descending in-degree.
	ByPopularity []int
}

// MeasureInfluence computes the influence report for a profile.
func MeasureInfluence(spec core.Spec, p core.Profile, agg core.Aggregation) *InfluenceReport {
	n := spec.N()
	rep := &InfluenceReport{
		Remoteness: core.CostVector(spec, p, agg),
		InDegree:   make([]int, n),
	}
	for _, s := range p {
		for _, v := range s {
			rep.InDegree[v]++
		}
	}
	rep.ByCloseness = make([]int, n)
	rep.ByPopularity = make([]int, n)
	for i := 0; i < n; i++ {
		rep.ByCloseness[i] = i
		rep.ByPopularity[i] = i
	}
	sort.SliceStable(rep.ByCloseness, func(i, j int) bool {
		return rep.Remoteness[rep.ByCloseness[i]] < rep.Remoteness[rep.ByCloseness[j]]
	})
	sort.SliceStable(rep.ByPopularity, func(i, j int) bool {
		return rep.InDegree[rep.ByPopularity[i]] > rep.InDegree[rep.ByPopularity[j]]
	})
	return rep
}

// TopK returns the first k entries of ids (or all of them when k is
// larger); a convenience for report rendering.
func TopK(ids []int, k int) []int {
	if k > len(ids) {
		k = len(ids)
	}
	return append([]int(nil), ids[:k]...)
}
