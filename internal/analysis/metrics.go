package analysis

import (
	"fmt"
	"math"

	"bbc/internal/core"
)

// Fairness summarizes the spread of node costs in a profile (Lemma 1: in
// any stable uniform graph the ratio is at most 2 + 1/k + o(1), and the
// additive gap at most n + n·⌊log_k n⌋).
type Fairness struct {
	Min, Max int64
	// Ratio is Max/Min as a float (Inf if Min is zero).
	Ratio float64
	// Gap is Max − Min.
	Gap int64
}

// MeasureFairness computes the cost spread for a profile.
func MeasureFairness(spec core.Spec, p core.Profile, agg core.Aggregation) Fairness {
	costs := core.CostVector(spec, p, agg)
	f := Fairness{Min: costs[0], Max: costs[0]}
	for _, c := range costs[1:] {
		if c < f.Min {
			f.Min = c
		}
		if c > f.Max {
			f.Max = c
		}
	}
	f.Gap = f.Max - f.Min
	if f.Min > 0 {
		f.Ratio = float64(f.Max) / float64(f.Min)
	} else {
		f.Ratio = math.Inf(1)
	}
	return f
}

// FairnessRatioBound returns the paper's Lemma 1 ratio bound 2 + 1/k
// (plus the o(1) slack folded into a small constant for finite n: the
// exact statement allows an additive n + n·⌊log_k n⌋, so small instances
// can exceed 2 + 1/k; callers should compare against AdditiveBound too).
func FairnessRatioBound(k int) float64 { return 2 + 1/float64(k) }

// FairnessAdditiveBound returns the Lemma 1 additive bound n + n·⌊log_k n⌋.
func FairnessAdditiveBound(n, k int) int64 {
	return int64(n) + int64(n)*int64(logK(n, k))
}

// logK returns ⌊log_k n⌋ (with log_1 treated as n−1 to keep k=1 usable).
func logK(n, k int) int {
	if k <= 1 {
		return n - 1
	}
	l := 0
	for pow := k; pow <= n; pow *= k {
		l++
	}
	return l
}

// DiameterStats reports the Lemma 7 quantities for a realized profile.
type DiameterStats struct {
	Diameter int64
	// Radius is the minimum eccentricity over nodes that reach everyone
	// (the "one node within O(sqrt n)" part of Lemma 7).
	Radius int64
	// StronglyConnected reports whether every node reaches every other.
	StronglyConnected bool
}

// MeasureDiameter computes diameter statistics for a profile.
func MeasureDiameter(spec core.Spec, p core.Profile) DiameterStats {
	g := p.Realize(spec)
	diam, strong := g.Diameter(spec.UnitLengths())
	radius, ok := g.Radius(spec.UnitLengths())
	if !ok {
		radius = -1
	}
	return DiameterStats{Diameter: diam, Radius: radius, StronglyConnected: strong}
}

// DiameterBound returns the Lemma 7 bound shape sqrt(n·log_k n) scaled by
// the given constant factor.
func DiameterBound(n, k int, factor float64) float64 {
	return factor * math.Sqrt(float64(n)*float64(max(1, logK(n, k))))
}

// SocialOptimumLowerBound returns the information-theoretic lower bound on
// the social cost of any (n, k)-uniform configuration under the sum
// aggregation: each node has at most k nodes at distance 1, k² at distance
// 2, and so on, so its cost is at least sum over the BFS-ideal profile.
func SocialOptimumLowerBound(n, k int) int64 {
	var perNode int64
	remaining := int64(n - 1)
	width := int64(k)
	dist := int64(1)
	for remaining > 0 {
		take := width
		if take > remaining {
			take = remaining
		}
		perNode += take * dist
		remaining -= take
		dist++
		if width <= (int64(1)<<62)/int64(k) {
			width *= int64(k)
		}
	}
	return perNode * int64(n)
}

// MaxOptimumLowerBound is the BBC-max analogue: every node's max distance
// is at least ⌈log_k n⌉ hops... more precisely at least the depth needed
// to cover n−1 nodes with out-degree k, so the social max-cost is at least
// n times that depth.
func MaxOptimumLowerBound(n, k int) int64 {
	depth := int64(0)
	covered := int64(0)
	width := int64(k)
	for covered < int64(n-1) {
		covered += width
		depth++
		if width <= (int64(1)<<62)/int64(k) {
			width *= int64(k)
		}
	}
	return depth * int64(n)
}

// PoAPoint is one point on a price-of-anarchy curve: the social cost of a
// worst known equilibrium divided by the social-optimum lower bound.
type PoAPoint struct {
	N, K        int
	WorstCost   int64
	OptimumLB   int64
	Ratio       float64
	Description string
}

// NewPoAPoint assembles a curve point.
func NewPoAPoint(n, k int, worst, optimum int64, desc string) PoAPoint {
	p := PoAPoint{N: n, K: k, WorstCost: worst, OptimumLB: optimum, Description: desc}
	if optimum > 0 {
		p.Ratio = float64(worst) / float64(optimum)
	}
	return p
}

// String renders the point as a table row.
func (p PoAPoint) String() string {
	return fmt.Sprintf("n=%-5d k=%-2d worst=%-10d optLB=%-10d PoA>=%.3f  %s",
		p.N, p.K, p.WorstCost, p.OptimumLB, p.Ratio, p.Description)
}
