package analysis

import (
	"testing"

	"bbc/internal/core"
)

func TestSampleEquilibriaSmallGame(t *testing.T) {
	spec := core.MustUniform(6, 1)
	s, err := SampleEquilibria(spec, 15, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Starts != 15 {
		t.Fatalf("starts = %d", s.Starts)
	}
	if s.Reached == 0 {
		t.Fatal("no walk converged on the (6,1) game")
	}
	if len(s.Costs) != s.Reached {
		t.Fatalf("costs %d != reached %d", len(s.Costs), s.Reached)
	}
	if s.Best() > s.Worst() {
		t.Fatal("best > worst")
	}
	if s.Spread() < 1 {
		t.Fatalf("spread %.3f < 1", s.Spread())
	}
	// Every sampled cost must be at least the optimum lower bound.
	lb := SocialOptimumLowerBound(6, 1)
	if s.Best() < lb {
		t.Fatalf("sampled equilibrium cost %d below the optimum bound %d", s.Best(), lb)
	}
}

func TestSampleEquilibriaDeterministic(t *testing.T) {
	spec := core.MustUniform(5, 1)
	a, err := SampleEquilibria(spec, 8, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleEquilibria(spec, 8, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reached != b.Reached || a.Distinct != b.Distinct || a.Best() != b.Best() {
		t.Fatalf("sampling not deterministic: %+v vs %+v", a, b)
	}
}

func TestSampleEquilibriaValidation(t *testing.T) {
	spec := core.MustUniform(5, 1)
	if _, err := SampleEquilibria(spec, 0, 1, 0); err == nil {
		t.Fatal("expected error for zero starts")
	}
}
