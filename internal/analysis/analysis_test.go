package analysis

import (
	"testing"

	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/group"
)

func TestCayleyGameShape(t *testing.T) {
	ab := group.MustCyclic(8)
	spec, p, err := CayleyGame(ab, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if spec.N() != 8 || spec.K() != 2 {
		t.Fatalf("spec = (%d,%d), want (8,2)", spec.N(), spec.K())
	}
	for u, s := range p {
		if len(s) != 2 {
			t.Fatalf("node %d has %d links", u, len(s))
		}
	}
}

func TestDirectedCycleIsStableCayley(t *testing.T) {
	// k=1: the paper notes the directed cycle is a stable Abelian Cayley
	// graph (the Theorem 5 instability needs k >= 2).
	for _, n := range []int{5, 9, 13} {
		stable, dev, err := CayleyStable(group.MustCyclic(n), []int{1}, core.SumDistances, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("Z_%d cycle unstable: %+v", n, dev)
		}
	}
}

func TestTheorem5CayleyInstability(t *testing.T) {
	// Theorem 5: for k >= 2 and n large enough, no Abelian Cayley graph is
	// stable; the witness deviation doubles one generator edge.
	cases := []struct {
		name string
		ab   *group.Abelian
		gens []int
	}{
		{name: "Z20 {1,2}", ab: group.MustCyclic(20), gens: []int{1, 2}},
		{name: "Z24 {1,5}", ab: group.MustCyclic(24), gens: []int{1, 5}},
		{name: "Z30 {1,6}", ab: group.MustCyclic(30), gens: []int{1, 6}},
		{name: "Z4xZ8 {(1,0),(0,1)}", ab: mustGroup(t, 4, 8), gens: []int{1, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stable, dev, err := CayleyStable(tc.ab, tc.gens, core.SumDistances, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if stable {
				t.Fatalf("%s should be unstable", tc.name)
			}
			if dev == nil || dev.Improvement() <= 0 {
				t.Fatalf("missing strict deviation: %+v", dev)
			}
		})
	}
}

func mustGroup(t *testing.T, moduli ...int) *group.Abelian {
	t.Helper()
	ab, err := group.NewAbelian(moduli...)
	if err != nil {
		t.Fatal(err)
	}
	return ab
}

func TestPaperDeviationImprovesOnLargeCycles(t *testing.T) {
	// The specific a_i -> 2a_i replacement from the proof of Theorem 5
	// strictly improves on large-enough cyclic Cayley graphs.
	dev, err := BestPaperDeviation(group.MustCyclic(30), []int{1, 6}, core.SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Delta >= 0 {
		t.Fatalf("paper deviation did not improve: %+v", dev)
	}
	if dev.GenIndex < 0 {
		t.Fatal("no generator selected")
	}
}

func TestHypercubeInstability(t *testing.T) {
	// Corollary 1: the 2^k-node hypercube is not stable for k > 4. Smaller
	// hypercubes are checked too: d=5 must be unstable; tiny ones may be
	// stable (Lemma 8 territory).
	if testing.Short() {
		t.Skip("hypercube d=5 exact check skipped in -short")
	}
	stable, err := HypercubeStable(5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("32-node hypercube should be unstable (Corollary 1)")
	}
}

func TestSmallHypercubeViaPaperDeviation(t *testing.T) {
	// For d=5 the paper's doubling deviation has a self-loop problem
	// (every element of Z_2^d has order 2), matching the proof's
	// restriction; the BestPaperDeviation helper must simply report no
	// improving doubling rather than crash.
	ab := group.MustBoolean(3)
	gens := []int{1, 2, 4}
	dev, err := BestPaperDeviation(ab, gens, core.SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if dev.GenIndex != -1 {
		t.Fatalf("Z_2^3 doubling should always self-loop, got %+v", dev)
	}
}

func TestLemma8DenseCayleyStable(t *testing.T) {
	// k > (n-2)/2: dense Cayley graphs are stable.
	ab := group.MustCyclic(8)
	gens := []int{1, 2, 3, 4} // k=4 > (8-2)/2 = 3
	stable, err := DenseCayleyStable(ab, gens)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("dense Cayley graph should be stable (Lemma 8)")
	}
	if _, err := DenseCayleyStable(ab, []int{1, 2}); err == nil {
		t.Fatal("expected error for sparse generator set")
	}
}

func TestMeasureFairnessOnWillows(t *testing.T) {
	// Lemma 1: stable graphs are essentially fair.
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 2, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := MeasureFairness(w.Spec, w.Profile, core.SumDistances)
	if f.Min <= 0 || f.Max < f.Min {
		t.Fatalf("degenerate fairness: %+v", f)
	}
	n, k := w.Params.N(), w.Params.K
	if f.Gap > FairnessAdditiveBound(n, k) {
		t.Fatalf("gap %d exceeds Lemma 1 additive bound %d", f.Gap, FairnessAdditiveBound(n, k))
	}
	// The ratio bound has an o(1) slack; allow the additive bound to
	// absorb it but still sanity-check the ratio is modest.
	if f.Ratio > FairnessRatioBound(k)+1 {
		t.Fatalf("ratio %.3f far above 2+1/k = %.3f", f.Ratio, FairnessRatioBound(k))
	}
}

func TestMeasureDiameterOnWillows(t *testing.T) {
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 3, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := MeasureDiameter(w.Spec, w.Profile)
	if !d.StronglyConnected {
		t.Fatal("willows must be strongly connected")
	}
	if d.Radius < 0 || d.Radius > d.Diameter {
		t.Fatalf("radius %d inconsistent with diameter %d", d.Radius, d.Diameter)
	}
	// Lemma 7 shape: diameter within a constant factor of sqrt(n log n).
	if float64(d.Diameter) > DiameterBound(w.Params.N(), w.Params.K, 4) {
		t.Fatalf("diameter %d above 4·sqrt(n log n) = %.1f", d.Diameter, DiameterBound(w.Params.N(), w.Params.K, 4))
	}
}

func TestSocialOptimumLowerBound(t *testing.T) {
	// n=4, k=1: each node: one at 1, one at 2, one at 3 = 6; total 24.
	if got := SocialOptimumLowerBound(4, 1); got != 24 {
		t.Fatalf("LB(4,1) = %d, want 24", got)
	}
	// n=4, k=3: all at distance 1: per node 3, total 12.
	if got := SocialOptimumLowerBound(4, 3); got != 12 {
		t.Fatalf("LB(4,3) = %d, want 12", got)
	}
	// The complete graph achieves the k=n-1 bound exactly.
	spec := core.MustUniform(4, 3)
	p := core.Profile{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}
	if got := core.SocialCost(spec, p, core.SumDistances); got != SocialOptimumLowerBound(4, 3) {
		t.Fatalf("complete graph cost %d != bound", got)
	}
}

func TestMaxOptimumLowerBound(t *testing.T) {
	if got := MaxOptimumLowerBound(4, 3); got != 4 {
		t.Fatalf("maxLB(4,3) = %d, want 4 (depth 1)", got)
	}
	if got := MaxOptimumLowerBound(8, 2); got != 8*3 {
		t.Fatalf("maxLB(8,2) = %d, want 24 (depth 3 covers 2+4+8>=7)", got)
	}
}

func TestWillowsBeatOptimumBoundByConstant(t *testing.T) {
	// PoS = Θ(1): the l=0 willows social cost is within a constant factor
	// of the social-optimum lower bound.
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 3, L: 0})
	if err != nil {
		t.Fatal(err)
	}
	cost := core.SocialCost(w.Spec, w.Profile, core.SumDistances)
	lb := SocialOptimumLowerBound(w.Params.N(), w.Params.K)
	if ratio := float64(cost) / float64(lb); ratio > 4 {
		t.Fatalf("l=0 willows cost ratio %.2f too far from optimum", ratio)
	}
}

func TestPoAPointString(t *testing.T) {
	p := NewPoAPoint(10, 2, 200, 100, "test")
	if p.Ratio != 2 {
		t.Fatalf("ratio = %v", p.Ratio)
	}
	if p.String() == "" {
		t.Fatal("empty render")
	}
}
