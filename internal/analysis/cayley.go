// Package analysis measures the paper's quantitative claims on concrete
// instances: instability of Abelian Cayley graphs (Theorem 5, Corollary 1,
// Lemma 8), fairness of stable graphs (Lemma 1), diameter bounds (Lemma
// 7), and price-of-anarchy / price-of-stability curves (Theorem 4,
// Theorems 8-9).
package analysis

import (
	"fmt"

	"bbc/internal/core"
	"bbc/internal/group"
)

// CayleyGame builds the (n, k)-uniform game played on the Cayley graph of
// the group over the generators, returning the spec and the profile in
// which every node plays the generator offsets.
func CayleyGame(ab *group.Abelian, gens []int) (*core.Uniform, core.Profile, error) {
	g, err := group.Cayley(ab, gens)
	if err != nil {
		return nil, nil, err
	}
	norm, err := ab.NormalizeGens(gens)
	if err != nil {
		return nil, nil, err
	}
	spec, err := core.NewUniform(ab.Order(), len(norm))
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: cayley game: %w", err)
	}
	return spec, core.FromGraph(g), nil
}

// PaperDeviation reports the cost change for node 0 (representative by
// vertex transitivity) when its i-th generator edge a_i is replaced by the
// doubled edge a_i + a_i — exactly the deviation in the proof of Theorem 5.
// Negative Delta means the deviation strictly improves and the Cayley
// graph is not stable.
type PaperDeviation struct {
	// GenIndex is the index (into the normalized generator list) whose
	// replacement improves most.
	GenIndex int
	// Delta is newCost − oldCost for the best replacement (most negative
	// first).
	Delta int64
	// OldCost is node 0's cost in the Cayley configuration.
	OldCost int64
}

// BestPaperDeviation tries every i-edge doubling for node 0 and returns
// the best one. The spec/profile must come from CayleyGame.
func BestPaperDeviation(ab *group.Abelian, gens []int, agg core.Aggregation) (*PaperDeviation, error) {
	spec, p, err := CayleyGame(ab, gens)
	if err != nil {
		return nil, err
	}
	norm, err := ab.NormalizeGens(gens)
	if err != nil {
		return nil, err
	}
	g := p.Realize(spec)
	old := core.NodeCost(spec, g, 0, agg)
	best := &PaperDeviation{GenIndex: -1, Delta: 0, OldCost: old}
	for i, a := range norm {
		doubled := ab.Double(a)
		if doubled == ab.Identity() || doubled == 0 {
			continue // a has order 2: the doubled edge would be a self loop
		}
		targets := make([]int, 0, len(norm))
		for j, b := range norm {
			if j == i {
				targets = append(targets, doubled)
			} else {
				targets = append(targets, b)
			}
		}
		trial := core.NormalizeStrategy(targets)
		if len(trial) < len(norm) {
			continue // doubled edge collides with another generator
		}
		q := p.Clone()
		q[0] = trial
		cost := core.NodeCost(spec, q.Realize(spec), 0, agg)
		if d := cost - old; d < best.Delta {
			best.Delta = d
			best.GenIndex = i
		}
	}
	return best, nil
}

// CayleyStable runs the full exact stability check on the Cayley
// configuration. By vertex transitivity it suffices to check node 0: if
// node 0 has no improving deviation, no node does.
func CayleyStable(ab *group.Abelian, gens []int, agg core.Aggregation, opts core.Options) (bool, *core.Deviation, error) {
	spec, p, err := CayleyGame(ab, gens)
	if err != nil {
		return false, nil, err
	}
	g := p.Realize(spec)
	dev, err := core.NodeDeviation(spec, g, p, 0, agg, opts)
	if err != nil {
		return false, nil, err
	}
	return dev == nil, dev, nil
}

// HypercubeStable checks Corollary 1: whether the 2^d-node hypercube is
// stable for the (2^d, d)-uniform game.
func HypercubeStable(d int, opts core.Options) (bool, error) {
	ab := group.MustBoolean(d)
	gens := make([]int, d)
	for i := 0; i < d; i++ {
		coords := make([]int, d)
		coords[i] = 1
		gens[i] = ab.Encode(coords)
	}
	stable, _, err := CayleyStable(ab, gens, core.SumDistances, opts)
	return stable, err
}

// DenseCayleyStable checks Lemma 8: any degree-k n-node Abelian Cayley
// graph with k > (n-2)/2 is stable.
func DenseCayleyStable(ab *group.Abelian, gens []int) (bool, error) {
	norm, err := ab.NormalizeGens(gens)
	if err != nil {
		return false, err
	}
	if 2*len(norm) <= ab.Order()-2 {
		return false, fmt.Errorf("analysis: generators violate k > (n-2)/2: k=%d n=%d", len(norm), ab.Order())
	}
	stable, _, err := CayleyStable(ab, norm, core.SumDistances, core.Options{})
	return stable, err
}
