// Package bbc reproduces "Bounded Budget Connection (BBC) Games or How to
// make friends and influence people, on a budget" (Laoutaris, Poplawski,
// Rajaraman, Sundaram, Teng — PODC 2008) as an executable laboratory: the
// game engine and best-response oracles live in internal/core, the paper's
// constructions in internal/construct, best-response dynamics in
// internal/dynamics, fractional games in internal/fractional, and the
// per-figure/theorem reproduction experiments in internal/exper (run them
// with cmd/bbcexp or the root-level benchmarks).
//
// See DESIGN.md for the system inventory and the experiment index, and
// EXPERIMENTS.md for the paper-vs-measured record.
package bbc
